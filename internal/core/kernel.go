package core

import (
	"fmt"
	"sync"

	"tdp/internal/waiting"
)

// deferKernel is the shared zero-allocation evaluation engine for the
// linear-in-p session models (static, dynamic, fixed-duration, and the
// definite-choice argmax). It flattens the per-type and per-period kernel
// tables of the original implementation into contiguous row-major slices
// and precomputes wrapped-index ("gather") tables, so that every inner
// O(n²) loop is a straight dot product over adjacent memory — no mod, no
// wrap branch, no bounds surprises — which is what lets the solvers hit
// the paper's "near real time" bar (§II, §III-B) as n grows.
//
// Table layout (n periods, m session types, dt ∈ [1, n−1]):
//
//	kern[j*n+dt]     = w_j'(1, dt)                       per-type deferral kernel
//	outW[i*n+dt]     = Σ_j D[i][j]·kern[j*n+dt]          flow out of i toward i+dt
//	                   (zero when NoWrap blocks i+dt ≥ n)
//	gathW[r*(n−1)+s] = outW[src*n+dt], src=(r+1+s) mod n, dt=n−1−s
//	                                                      flow into r, by source
//	inW[r]           = Σ_dt outW[((r−dt) mod n)*n+dt]    total inflow weight
//
// gathW is outW re-indexed by *destination*: entry s of row r is the
// weight of traffic arriving into period r from source period (r+1+s) mod
// n. Together with a doubled buffer v2 (v2[i] = v2[n+i] = v[i]) this turns
// both the usage loop and the gradient gather into forward scans:
//
//	Out_i   = outW[i*n+1 : i*n+n] · p2[i+1 : i+n]
//	In-grad = gathW row r          · fp2[r+1 : r+n]
type deferKernel struct {
	n, m   int
	noWrap bool
	kern   []float64 // m × n, index j*n+dt; [j*n+0] unused
	outW   []float64 // n × n, index i*n+dt; [i*n+0] unused
	gathW  []float64 // n × (n−1), destination-major gather table
	inW    []float64 // n
}

// newDeferKernel precomputes the tables for the given per-type waiting
// functions and demand matrix. The construction order of outW and inW
// matches the original per-model implementations exactly, so the tables
// are bit-identical to the ones the pre-flattening code built.
func newDeferKernel(wfs []waiting.Func, demand [][]float64, n int, noWrap bool) *deferKernel {
	m := len(wfs)
	k := &deferKernel{
		n:      n,
		m:      m,
		noWrap: noWrap,
		kern:   make([]float64, m*n),
		outW:   make([]float64, n*n),
		gathW:  make([]float64, n*(n-1)),
		inW:    make([]float64, n),
	}
	for j, w := range wfs {
		row := k.kern[j*n : j*n+n]
		for dt := 1; dt <= n-1; dt++ {
			row[dt] = w.DerivP(1, dt)
		}
	}
	for i := 0; i < n; i++ {
		k.rebuildOutRow(i, demand[i])
	}
	for r := 0; r < n; r++ {
		var s float64
		for dt := 1; dt <= n-1; dt++ {
			src := r - dt
			if src < 0 {
				src += n
			}
			s += k.outW[src*n+dt]
		}
		k.inW[r] = s
	}
	k.rebuildGather()
	return k
}

// rebuildOutRow recomputes outW row i from the demand row.
func (k *deferKernel) rebuildOutRow(i int, demand []float64) {
	n := k.n
	row := k.outW[i*n : i*n+n]
	for dt := 1; dt <= n-1; dt++ {
		if k.noWrap && i+dt >= n {
			row[dt] = 0
			continue // deferral would cross the day boundary
		}
		var s float64
		for j, d := range demand {
			if d != 0 {
				s += d * k.kern[j*n+dt]
			}
		}
		row[dt] = s
	}
}

// rebuildGather refreshes the destination-major gather table from outW.
func (k *deferKernel) rebuildGather() {
	n := k.n
	for r := 0; r < n; r++ {
		grow := k.gathW[r*(n-1) : (r+1)*(n-1)]
		for s := 0; s < n-1; s++ {
			src := r + 1 + s
			if src >= n {
				src -= n
			}
			grow[s] = k.outW[src*n+(n-1-s)]
		}
	}
}

// setDemandRow updates the tables after demand row i changes — the online
// algorithm's per-period estimate fold (§III-B). Only outW row i, the n−1
// gather entries sourced from i, and the inW terms contributed by i are
// touched, so the update is O(n·m) instead of the O(n²·m) full rebuild.
func (k *deferKernel) setDemandRow(i int, demand []float64) {
	n := k.n
	old, vp := k.getVec()
	copy(old, k.outW[i*n:i*n+n])
	k.rebuildOutRow(i, demand)
	for dt := 1; dt <= n-1; dt++ {
		r := i + dt
		if r >= n {
			r -= n
		}
		// Destination r receives from i at lag dt: gathW slot s = n−1−dt.
		k.gathW[r*(n-1)+(n-1-dt)] = k.outW[i*n+dt]
		k.inW[r] += k.outW[i*n+dt] - old[dt]
	}
	vecPool.Put(vp)
}

// vecPool recycles length-n scratch for table updates.
var vecPool = sync.Pool{New: func() any { return new([]float64) }}

// getVec borrows a length-n scratch slice; return its handle to vecPool
// when done.
//
//tubelint:pooled
func (k *deferKernel) getVec() ([]float64, *[]float64) {
	vp := vecPool.Get().(*[]float64)
	if cap(*vp) < k.n {
		*vp = make([]float64, k.n)
	}
	v := (*vp)[:k.n]
	return v, vp
}

// dot is the kernel inner product, unrolled into eight independent
// accumulators so the multiply-add chains pipeline instead of serializing
// on one add's latency. The reassociated sum differs from a serial sum only by
// rounding (≪1e-12 relative at kernel sizes), which is inside every
// fast≡reference tolerance.
func dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot2 computes two inner products sharing one sliding window:
//
//	s = a · p[0:len(a)]    t = b · p[1:len(a)+1]
//
// The row-paired O(n²) loops use it so adjacent destinations reuse the
// window loads (three loads per two multiply-adds instead of four), which
// is the binding resource once the arithmetic is unrolled. Accumulator
// splitting reassociates the sums like dot does (four lanes per row), with
// the same ≪1e-12 rounding caveat.
func dot2(a, b, p []float64) (float64, float64) {
	n := len(a)
	b = b[:n]
	p = p[:n+1]
	var s0, s1, s2, s3, t0, t1, t2, t3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		p0, p1, p2, p3, p4 := p[i], p[i+1], p[i+2], p[i+3], p[i+4]
		s0 += a[i] * p0
		t0 += b[i] * p1
		s1 += a[i+1] * p1
		t1 += b[i+1] * p2
		s2 += a[i+2] * p2
		t2 += b[i+2] * p3
		s3 += a[i+3] * p3
		t3 += b[i+3] * p4
	}
	s := (s0 + s1) + (s2 + s3)
	t := (t0 + t1) + (t2 + t3)
	for ; i < n; i++ {
		s += a[i] * p[i]
		t += b[i] * p[i+1]
	}
	return s, t
}

// arrivalsInto computes the post-deferral volume profile and the
// deferred-into vector for rewards p, writing into the workspace:
//
//	x[i]  = totals[i] − Out_i + In_i
//	in[i] = max(p_i, 0)·inW[i]
//
// p2 must have length 2n; it is filled with the doubled clamped rewards so
// the Out_i dot product needs no wrap. The loop adds exact zeros where the
// original skipped non-positive rewards or NoWrap-blocked lags (those
// outW entries are zero), so the sums match the branchy original up to
// dot's reassociation rounding.
func (k *deferKernel) arrivalsInto(p, totals, x, in, p2 []float64) {
	n := k.n
	for i := 0; i < n; i++ {
		v := p[i]
		if v < 0 {
			v = 0
		}
		p2[i] = v
		p2[n+i] = v
		in[i] = v * k.inW[i]
	}
	i := 0
	for ; i+1 < n; i += 2 {
		rowA := k.outW[i*n+1 : i*n+n]
		rowB := k.outW[(i+1)*n+1 : (i+1)*n+n]
		s, t := dot2(rowA, rowB, p2[i+1:i+n+1])
		x[i] = totals[i] - s + in[i]
		x[i+1] = totals[i+1] - t + in[i+1]
	}
	for ; i < n; i++ {
		row := k.outW[i*n+1 : i*n+n]
		x[i] = totals[i] - dot(row, p2[i+1:i+n]) + in[i]
	}
}

// gradGather writes the model gradient for per-period sensitivities lam
// (λ_i = ∂C/∂x_i, doubled into lam2 by the caller):
//
//	grad[r] = (2p_r + λ_r)·inW[r] − Σ_s gathW[r][s]·λ_{(r+1+s) mod n}
//
// This is the flattened form of the original "−Σ_dt λ_{(r−dt) mod n}·
// outW[(r−dt) mod n][dt]" gather, traversed by source instead of lag.
func (k *deferKernel) gradGather(p, lam2, grad []float64) {
	n := k.n
	r := 0
	for ; r+1 < n; r += 2 {
		rowA := k.gathW[r*(n-1) : (r+1)*(n-1)]
		rowB := k.gathW[(r+1)*(n-1) : (r+2)*(n-1)]
		s, t := dot2(rowA, rowB, lam2[r+1:r+n+1])
		grad[r] = (2*p[r]+lam2[r])*k.inW[r] - s
		grad[r+1] = (2*p[r+1]+lam2[r+1])*k.inW[r+1] - t
	}
	for ; r < n; r++ {
		row := k.gathW[r*(n-1) : (r+1)*(n-1)]
		grad[r] = (2*p[r]+lam2[r])*k.inW[r] - dot(row, lam2[r+1:r+n])
	}
}

// periodCoef writes the single-coordinate sensitivity vector for reward r:
// coef[i] = ∂x_i/∂p_r⁺, i.e. +inW[r] at i = r and −(flow i→r weight)
// elsewhere. SolveForPeriod's O(n) incremental cost path is built on it.
func (k *deferKernel) periodCoef(r int, coef []float64) {
	n := k.n
	row := k.gathW[r*(n-1) : (r+1)*(n-1)]
	for s, w := range row {
		src := r + 1 + s
		if src >= n {
			src -= n
		}
		coef[src] = -w
	}
	coef[r] = k.inW[r]
}

// evalWS is a per-evaluation scratch workspace. Workspaces are pooled per
// model so concurrent solves (multistart restarts, parallel experiments)
// each borrow their own — the evaluation hot path allocates nothing in
// steady state and stays race-clean.
type evalWS struct {
	x, in []float64 // n: usage/arrival profile and deferred-into vector
	p2    []float64 // 2n: doubled clamped rewards
	lam2  []float64 // 2n: doubled per-period cost sensitivities
	z     []float64 // n: backlog recursion state (dynamic model)
	fp    []float64 // n: per-period cost derivatives (dynamic adjoint)
	sder  []float64 // n: smooth-max derivatives (dynamic adjoint)
	pwork []float64 // n: coordinate-solve reward copy
	coef  []float64 // n: coordinate-solve sensitivities
	baseX []float64 // n: coordinate-solve base profile
}

func newEvalWS(n int) *evalWS {
	return &evalWS{
		x:     make([]float64, n),
		in:    make([]float64, n),
		p2:    make([]float64, 2*n),
		lam2:  make([]float64, 2*n),
		z:     make([]float64, n),
		fp:    make([]float64, n),
		sder:  make([]float64, n),
		pwork: make([]float64, n),
		coef:  make([]float64, n),
		baseX: make([]float64, n),
	}
}

// wsPool pools evalWS instances for one model.
type wsPool struct {
	n    int
	pool sync.Pool
}

func (p *wsPool) init(n int) { p.n = n }

//tubelint:pooled
func (p *wsPool) get() *evalWS {
	if w, ok := p.pool.Get().(*evalWS); ok {
		return w
	}
	return newEvalWS(p.n)
}

func (p *wsPool) put(w *evalWS) { p.pool.Put(w) }

// funcsOf adapts a concrete waiting-function slice to []waiting.Func.
func funcsOf[F waiting.Func](ws []F) []waiting.Func {
	out := make([]waiting.Func, len(ws))
	for i, w := range ws {
		out[i] = w
	}
	return out
}

// checkPeriod validates a 0-based period index.
func checkPeriod(period, n int) error {
	if period < 0 || period >= n {
		return fmt.Errorf("period %d of %d: %w", period, n, ErrBadScenario)
	}
	return nil
}

// PeriodSolve reports one single-coordinate (online §III-B) solve.
type PeriodSolve struct {
	// Reward is the optimal reward for the period.
	Reward float64
	// Cost is the exact model cost at the optimum.
	Cost float64
	// Evals is the number of one-dimensional cost evaluations spent.
	Evals int
	// Warm reports whether the warm-started bracket was sufficient (false
	// for cold solves and for warm solves that fell back to the full
	// bracket).
	Warm bool
}
