package core

import (
	"reflect"
	"testing"
)

// fullScenario returns a scenario with every field set to a non-zero
// value, so a Clone that drops a field cannot go unnoticed.
func fullScenario() *Scenario {
	return &Scenario{
		Periods:       4,
		Demand:        [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		Betas:         []float64{0.5, 5},
		Capacity:      []float64{9, 9, 9, 9},
		Cost:          LinearCost(3),
		PeriodSeconds: 600,
		MaxRewardNorm: 1.5,
		NoWrap:        true,
	}
}

func TestCloneCopiesEveryField(t *testing.T) {
	s := fullScenario()
	// Guard the guard: every field of the source must be non-zero, or a
	// dropped field would compare equal by accident. A new Scenario field
	// trips this until fullScenario covers it.
	v := reflect.ValueOf(*s)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("fullScenario leaves field %s zero; set it so Clone coverage stays meaningful",
				v.Type().Field(i).Name)
		}
	}
	cp := s.Clone()
	if !reflect.DeepEqual(s, cp) {
		t.Errorf("Clone() = %+v, want %+v", cp, s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := fullScenario()
	cp := s.Clone()
	cp.Demand[0][0] = 99
	cp.Betas[0] = 99
	cp.Capacity[0] = 99
	cp.Cost.Slopes[0] = 99
	cp.NoWrap = false
	cp.MaxRewardNorm = 99
	if !reflect.DeepEqual(s, fullScenario()) {
		t.Errorf("mutating the clone reached the original: %+v", s)
	}
}
