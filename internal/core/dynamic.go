package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// DynamicModel is the offline dynamic session model of §III-A in its
// single-bottleneck form (Prop. 5): the static model with (a) uniformly
// distributed arrival times inside each period, and (b) unfinished work
// carrying over between periods.
//
// Per period i the model tracks the fluid recursion
//
//	arr_i     = X_i − Out_i(p) + In_i(p)          (arrivals after deferral)
//	z_i       = backlog_{i−1} + arr_i − A_i        (end-of-period excess)
//	backlog_i = max(z_i, 0)
//	cost_i    = p_i·In_i + f(z_i)
//
// where f(z_i) is the paper's f(b·N(i)) — the cost of the work remaining
// at the end of the period. All cost breakpoints must be ≥ 0 so that
// f(max(z,0)) = f(z).
//
// Like StaticModel, the linear-in-p waiting family lets the model share
// the flattened deferKernel tables, so evaluations are branch-free O(n²)
// passes with pooled workspaces and no steady-state allocation.
type DynamicModel struct {
	scn    *Scenario
	wfs    []waiting.UniformArrival
	totals []float64
	kd     *deferKernel
	ws     wsPool
	n, m   int

	// StartBacklog is the work in the system at the start of period 1
	// (default 0, the paper's 12 am start).
	StartBacklog float64
}

// NewDynamicModel validates the scenario and precomputes kernel tables.
func NewDynamicModel(scn *Scenario) (*DynamicModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	for i, b := range scn.Cost.Breaks {
		if b < 0 {
			return nil, fmt.Errorf("dynamic model needs cost breaks ≥ 0, got %v at %d: %w",
				b, i, ErrBadScenario)
		}
	}
	n, m := scn.Periods, len(scn.Betas)
	p := scn.NormReward()
	dm := &DynamicModel{
		scn:    scn,
		totals: scn.TotalDemand(),
		n:      n,
		m:      m,
	}
	dm.wfs = make([]waiting.UniformArrival, m)
	for j, beta := range scn.Betas {
		w, err := waiting.NewUniformArrival(beta, n, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		dm.wfs[j] = w
	}
	dm.kd = newDeferKernel(funcsOf(dm.wfs), scn.Demand, n, scn.NoWrap)
	dm.ws.init(n)
	return dm, nil
}

// Scenario returns the model's underlying scenario.
func (dm *DynamicModel) Scenario() *Scenario { return dm.scn }

// MaxReward returns the reward box bound: the smaller of the maximum
// marginal capacity-exceedance cost and the normalization reward.
func (dm *DynamicModel) MaxReward() float64 {
	return math.Min(dm.scn.Cost.MaxSlope(), dm.scn.NormReward())
}

// SetDemandRow replaces the demand estimate for period i (0-based) and
// incrementally updates the kernel tables in O(n·m).
func (dm *DynamicModel) SetDemandRow(i int, row []float64) error {
	if err := checkPeriod(i, dm.n); err != nil {
		return err
	}
	if len(row) != dm.m {
		return fmt.Errorf("demand row with %d types, want %d: %w", len(row), dm.m, ErrBadScenario)
	}
	var total float64
	for j, d := range row {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("demand %v for type %d: %w", d, j, ErrBadScenario)
		}
		total += d
	}
	copy(dm.scn.Demand[i], row)
	dm.totals[i] = total
	dm.kd.setDemandRow(i, dm.scn.Demand[i])
	return nil
}

// Arrivals returns the post-deferral arrival profile arr_i for rewards p.
func (dm *DynamicModel) Arrivals(p []float64) []float64 {
	w := dm.ws.get()
	defer dm.ws.put(w)
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	return append([]float64(nil), w.x...)
}

// Load returns the offered load per period (backlog carried in plus new
// arrivals) and the end-of-period backlog, the quantities Fig. 8 plots.
func (dm *DynamicModel) Load(p []float64) (load, backlog []float64) {
	w := dm.ws.get()
	defer dm.ws.put(w)
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	n := dm.n
	load = make([]float64, n)
	backlog = make([]float64, n)
	carry := dm.StartBacklog
	for i := 0; i < n; i++ {
		load[i] = carry + w.x[i]
		z := load[i] - dm.scn.Capacity[i]
		if z < 0 {
			z = 0
		}
		backlog[i] = z
		carry = z
	}
	return load, backlog
}

// CostAt evaluates the exact objective (3) at rewards p.
func (dm *DynamicModel) CostAt(p []float64) float64 {
	return dm.costSmoothed(p, 0)
}

// TIPCost returns the cost with no rewards offered.
func (dm *DynamicModel) TIPCost() float64 {
	w := dm.ws.get()
	zero := w.pwork
	for i := range zero {
		zero[i] = 0
	}
	c := dm.costSmoothed(zero, 0)
	dm.ws.put(w)
	return c
}

func (dm *DynamicModel) costSmoothed(p []float64, mu float64) float64 {
	w := dm.ws.get()
	defer dm.ws.put(w)
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	var c float64
	carry := dm.StartBacklog
	for i := 0; i < dm.n; i++ {
		z := carry + w.x[i] - dm.scn.Capacity[i]
		c += p[i]*w.in[i] + dm.scn.Cost.Smooth(z, mu)
		carry = optimize.SmoothMax(z, mu)
	}
	return c
}

// dynamicObjective is the softplus-smoothed dynamic cost with its analytic
// adjoint gradient. It implements optimize.ValueGrader: the fused path
// runs the arrival pass and backlog recursion once, caching the per-period
// derivatives for the adjoint sweep so value and gradient share all the
// transcendental work.
type dynamicObjective struct {
	dm *DynamicModel
	mu float64
}

var _ optimize.ValueGrader = dynamicObjective{}

// Value implements optimize.Objective.
func (o dynamicObjective) Value(p []float64) float64 { return o.dm.costSmoothed(p, o.mu) }

// Grad implements optimize.Objective.
func (o dynamicObjective) Grad(p, grad []float64) {
	dm := o.dm
	n := dm.n
	w := dm.ws.get()
	defer dm.ws.put(w)
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	carry := dm.StartBacklog
	for i := 0; i < n; i++ {
		w.z[i] = carry + w.x[i] - dm.scn.Capacity[i]
		carry = optimize.SmoothMax(w.z[i], o.mu)
	}
	o.adjoint(p, w, grad)
}

// ValueGrad implements optimize.ValueGrader.
func (o dynamicObjective) ValueGrad(p, grad []float64) float64 {
	dm := o.dm
	n := dm.n
	w := dm.ws.get()
	defer dm.ws.put(w)
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	var c float64
	carry := dm.StartBacklog
	for i := 0; i < n; i++ {
		z := carry + w.x[i] - dm.scn.Capacity[i]
		w.z[i] = z
		v, fp := dm.scn.Cost.SmoothBoth(z, o.mu)
		c += p[i]*w.in[i] + v
		w.fp[i] = fp
		carry, w.sder[i] = optimize.SmoothMaxBoth(z, o.mu)
	}
	// Adjoint sweep over the cached derivatives: λ_i = f'(z_i) +
	// λ_{i+1}·S'(z_i).
	lam := 0.0
	for i := n - 1; i >= 0; i-- {
		lam = w.fp[i] + lam*w.sder[i]
		w.lam2[i] = lam
		w.lam2[n+i] = lam
	}
	dm.kd.gradGather(p, w.lam2, grad)
	return c
}

// adjoint fills the gradient from the backlog state w.z (already computed
// for the current p), recomputing the per-period derivatives.
func (o dynamicObjective) adjoint(p []float64, w *evalWS, grad []float64) {
	dm := o.dm
	n := dm.n
	// λ_i = ∂C/∂z_i = f'(z_i) + λ_{i+1}·S'(z_i).
	lam := 0.0
	for i := n - 1; i >= 0; i-- {
		lam = dm.scn.Cost.SmoothDeriv(w.z[i], o.mu)
		if i < n-1 {
			lam += w.lam2[i+1] * optimize.SmoothMaxDeriv(w.z[i], o.mu)
		}
		w.lam2[i] = lam
		w.lam2[n+i] = lam
	}
	dm.kd.gradGather(p, w.lam2, grad)
}

// smoothedObjective builds the softplus-smoothed objective with its
// analytic (adjoint) gradient.
func (dm *DynamicModel) smoothedObjective(mu float64) optimize.Objective {
	return dynamicObjective{dm: dm, mu: mu}
}

// Solve minimizes the dynamic-model cost over rewards in [0, P]. Options
// are forwarded to the homotopy driver; optimize.WithWarmStart(prev)
// seeds the solve and truncates the smoothing schedule.
func (dm *DynamicModel) Solve(opts ...optimize.Option) (*Pricing, error) {
	bounds := optimize.UniformBounds(dm.n, 0, dm.MaxReward())
	x0 := make([]float64, dm.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective { return dm.smoothedObjective(mu) },
		dm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		append([]optimize.Option{
			optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
		}, opts...)...,
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("dynamic solve: %w", err)
	}
	p := res.X
	w := dm.ws.get()
	dm.kd.arrivalsInto(p, dm.totals, w.x, w.in, w.p2)
	var outlay float64
	for i := 0; i < dm.n; i++ {
		outlay += p[i] * w.in[i]
	}
	arr := append([]float64(nil), w.x...)
	dm.ws.put(w)
	return &Pricing{
		Rewards:      p,
		Usage:        arr,
		Cost:         res.F,
		TIPCost:      dm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}

// SolveForPeriod optimizes the single reward p_{period+1} with the others
// held fixed — the online algorithm's inner step against the dynamic cost.
func (dm *DynamicModel) SolveForPeriod(p []float64, period int) (float64, float64, error) {
	ps, err := dm.solveForPeriod(p, period, 0, false)
	if err != nil {
		return 0, 0, err
	}
	return ps.Reward, ps.Cost, nil
}

// SolveForPeriodWarm is SolveForPeriod seeded with the previous reward for
// the slot; see StaticModel.SolveForPeriodWarm.
func (dm *DynamicModel) SolveForPeriodWarm(p []float64, period int, prev float64) (PeriodSolve, error) {
	return dm.solveForPeriod(p, period, prev, true)
}

// SolveForPeriodCold is SolveForPeriod with the solve report; see
// StaticModel.SolveForPeriodCold.
func (dm *DynamicModel) SolveForPeriodCold(p []float64, period int) (PeriodSolve, error) {
	return dm.solveForPeriod(p, period, 0, false)
}

func (dm *DynamicModel) solveForPeriod(p []float64, period int, prev float64, warm bool) (PeriodSolve, error) {
	if err := checkPeriod(period, dm.n); err != nil {
		return PeriodSolve{}, err
	}
	w := dm.ws.get()
	defer dm.ws.put(w)

	// Arrivals are affine in p_r⁺ exactly as in the static model, so each
	// Brent evaluation runs the O(n) backlog recursion over the base
	// profile plus the coordinate sensitivity, not a fresh O(n²) pass.
	copy(w.pwork, p)
	w.pwork[period] = 0
	dm.kd.arrivalsInto(w.pwork, dm.totals, w.baseX, w.in, w.p2)
	var constOutlay float64
	for i := 0; i < dm.n; i++ {
		constOutlay += w.pwork[i] * w.in[i]
	}
	dm.kd.periodCoef(period, w.coef)
	inWr := dm.kd.inW[period]

	evals := 0
	eval := func(t float64) float64 {
		evals++
		tp := t
		if tp < 0 {
			tp = 0
		}
		c := constOutlay + t*tp*inWr
		carry := dm.StartBacklog
		for i := 0; i < dm.n; i++ {
			z := carry + w.baseX[i] + w.coef[i]*tp - dm.scn.Capacity[i]
			c += dm.scn.Cost.Value(z)
			if z < 0 {
				z = 0
			}
			carry = z
		}
		return c
	}

	best, _, usedWarm := minimizeCoord(eval, dm.MaxReward(), prev, warm)

	w.pwork[period] = best
	fbest := dm.CostAt(w.pwork)
	return PeriodSolve{Reward: best, Cost: fbest, Evals: evals, Warm: usedWarm}, nil
}
