package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// DynamicModel is the offline dynamic session model of §III-A in its
// single-bottleneck form (Prop. 5): the static model with (a) uniformly
// distributed arrival times inside each period, and (b) unfinished work
// carrying over between periods.
//
// Per period i the model tracks the fluid recursion
//
//	arr_i     = X_i − Out_i(p) + In_i(p)          (arrivals after deferral)
//	z_i       = backlog_{i−1} + arr_i − A_i        (end-of-period excess)
//	backlog_i = max(z_i, 0)
//	cost_i    = p_i·In_i + f(z_i)
//
// where f(z_i) is the paper's f(b·N(i)) — the cost of the work remaining
// at the end of the period. All cost breakpoints must be ≥ 0 so that
// f(max(z,0)) = f(z).
//
// Like StaticModel, the linear-in-p waiting family lets the model
// precompute kernel tables, so evaluations are O(n²).
type DynamicModel struct {
	scn    *Scenario
	wfs    []waiting.UniformArrival
	totals []float64
	inW    []float64
	outW   [][]float64
	n, m   int

	// StartBacklog is the work in the system at the start of period 1
	// (default 0, the paper's 12 am start).
	StartBacklog float64
}

// NewDynamicModel validates the scenario and precomputes kernel tables.
func NewDynamicModel(scn *Scenario) (*DynamicModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	for i, b := range scn.Cost.Breaks {
		if b < 0 {
			return nil, fmt.Errorf("dynamic model needs cost breaks ≥ 0, got %v at %d: %w",
				b, i, ErrBadScenario)
		}
	}
	n, m := scn.Periods, len(scn.Betas)
	p := scn.NormReward()
	dm := &DynamicModel{
		scn:    scn,
		totals: scn.TotalDemand(),
		n:      n,
		m:      m,
	}
	dm.wfs = make([]waiting.UniformArrival, m)
	for j, beta := range scn.Betas {
		w, err := waiting.NewUniformArrival(beta, n, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		dm.wfs[j] = w
	}
	dm.outW = make([][]float64, n)
	for i := 0; i < n; i++ {
		dm.outW[i] = make([]float64, n)
		for dt := 1; dt <= n-1; dt++ {
			if scn.NoWrap && i+dt >= n {
				continue // deferral would cross the day boundary
			}
			var s float64
			for j, d := range scn.Demand[i] {
				if d != 0 {
					s += d * dm.wfs[j].DerivP(1, dt)
				}
			}
			dm.outW[i][dt] = s
		}
	}
	dm.inW = make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for dt := 1; dt <= n-1; dt++ {
			k := i - dt
			if k < 0 {
				k += n
			}
			s += dm.outW[k][dt]
		}
		dm.inW[i] = s
	}
	return dm, nil
}

// Scenario returns the model's underlying scenario.
func (dm *DynamicModel) Scenario() *Scenario { return dm.scn }

// MaxReward returns the reward box bound: the smaller of the maximum
// marginal capacity-exceedance cost and the normalization reward.
func (dm *DynamicModel) MaxReward() float64 {
	return math.Min(dm.scn.Cost.MaxSlope(), dm.scn.NormReward())
}

// Arrivals returns the post-deferral arrival profile arr_i for rewards p.
func (dm *DynamicModel) Arrivals(p []float64) []float64 {
	arr, _ := dm.arrivals(p)
	return arr
}

func (dm *DynamicModel) arrivals(p []float64) (arr, in []float64) {
	n := dm.n
	arr = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		if pi := p[i]; pi > 0 {
			in[i] = pi * dm.inW[i]
		}
	}
	for i := 0; i < n; i++ {
		var out float64
		row := dm.outW[i]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		arr[i] = dm.totals[i] - out + in[i]
	}
	return arr, in
}

// Load returns the offered load per period (backlog carried in plus new
// arrivals) and the end-of-period backlog, the quantities Fig. 8 plots.
func (dm *DynamicModel) Load(p []float64) (load, backlog []float64) {
	arr, _ := dm.arrivals(p)
	n := dm.n
	load = make([]float64, n)
	backlog = make([]float64, n)
	carry := dm.StartBacklog
	for i := 0; i < n; i++ {
		load[i] = carry + arr[i]
		z := load[i] - dm.scn.Capacity[i]
		if z < 0 {
			z = 0
		}
		backlog[i] = z
		carry = z
	}
	return load, backlog
}

// CostAt evaluates the exact objective (3) at rewards p.
func (dm *DynamicModel) CostAt(p []float64) float64 {
	return dm.costSmoothed(p, 0)
}

// TIPCost returns the cost with no rewards offered.
func (dm *DynamicModel) TIPCost() float64 {
	return dm.CostAt(make([]float64, dm.n))
}

func (dm *DynamicModel) costSmoothed(p []float64, mu float64) float64 {
	arr, in := dm.arrivals(p)
	var c float64
	carry := dm.StartBacklog
	for i := 0; i < dm.n; i++ {
		z := carry + arr[i] - dm.scn.Capacity[i]
		c += p[i]*in[i] + dm.scn.Cost.Smooth(z, mu)
		carry = optimize.SmoothMax(z, mu)
	}
	return c
}

// smoothedObjective builds the softplus-smoothed objective with its
// analytic (adjoint) gradient.
func (dm *DynamicModel) smoothedObjective(mu float64) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(p []float64) float64 { return dm.costSmoothed(p, mu) },
		GradFn: func(p, grad []float64) {
			n := dm.n
			arr, _ := dm.arrivals(p)
			z := make([]float64, n)
			carry := dm.StartBacklog
			for i := 0; i < n; i++ {
				z[i] = carry + arr[i] - dm.scn.Capacity[i]
				carry = optimize.SmoothMax(z[i], mu)
			}
			// Adjoint sweep: λ_i = ∂C/∂z_i = f'(z_i) + λ_{i+1}·S'(z_i).
			lambda := make([]float64, n)
			for i := n - 1; i >= 0; i-- {
				lambda[i] = dm.scn.Cost.SmoothDeriv(z[i], mu)
				if i < n-1 {
					lambda[i] += lambda[i+1] * optimize.SmoothMaxDeriv(z[i], mu)
				}
			}
			// grad[r] = 2p_r·inW[r] + λ_r·inW[r] − Σ_{i≠r} λ_i·outW[i][t(i→r)].
			for r := 0; r < n; r++ {
				g := (2*p[r] + lambda[r]) * dm.inW[r]
				for dt := 1; dt <= n-1; dt++ {
					i := r - dt
					if i < 0 {
						i += n
					}
					if lambda[i] != 0 {
						g -= lambda[i] * dm.outW[i][dt]
					}
				}
				grad[r] = g
			}
		},
	}
}

// Solve minimizes the dynamic-model cost over rewards in [0, P].
func (dm *DynamicModel) Solve() (*Pricing, error) {
	bounds := optimize.UniformBounds(dm.n, 0, dm.MaxReward())
	x0 := make([]float64, dm.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective { return dm.smoothedObjective(mu) },
		dm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("dynamic solve: %w", err)
	}
	p := res.X
	arr, in := dm.arrivals(p)
	var outlay float64
	for i := 0; i < dm.n; i++ {
		outlay += p[i] * in[i]
	}
	return &Pricing{
		Rewards:      p,
		Usage:        arr,
		Cost:         dm.CostAt(p),
		TIPCost:      dm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}

// SolveForPeriod optimizes the single reward p_{period+1} with the others
// held fixed — the online algorithm's inner step against the dynamic cost.
func (dm *DynamicModel) SolveForPeriod(p []float64, period int) (float64, float64, error) {
	if period < 0 || period >= dm.n {
		return 0, 0, fmt.Errorf("period %d of %d: %w", period, dm.n, ErrBadScenario)
	}
	work := append([]float64(nil), p...)
	best, fbest := optimize.Brent(func(t float64) float64 {
		work[period] = t
		return dm.CostAt(work)
	}, 0, dm.MaxReward(), 1e-10)
	return best, fbest, nil
}
