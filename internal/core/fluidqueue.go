package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// ServiceCurve is the paper's μ(N): the bandwidth the ISP network
// delivers when N sessions are active (Prop. 4, eq. 4). For a single
// bottleneck it is constant (Prop. 5 reduces the model to DynamicModel);
// general networks serve less efficiently as concurrency grows.
type ServiceCurve interface {
	// Rate returns the service rate in volume units per period when
	// backlogVolume units of work are pending. Must be non-negative and
	// non-decreasing in backlogVolume.
	Rate(backlogVolume float64) float64
}

// ConstantService is the single-bottleneck μ: the full capacity whenever
// any work is pending.
type ConstantService struct {
	// Capacity in volume units per period.
	Capacity float64
}

// Rate implements ServiceCurve.
func (c ConstantService) Rate(backlogVolume float64) float64 {
	if backlogVolume <= 0 {
		return 0
	}
	return c.Capacity
}

// SaturatingService models a network whose effective throughput degrades
// under load (e.g. TCP loss-recovery overhead): rate = C·q/(q+K), ramping
// to capacity C as the queue q grows past the half-load constant K.
type SaturatingService struct {
	Capacity float64
	HalfLoad float64
}

// Rate implements ServiceCurve.
func (s SaturatingService) Rate(backlogVolume float64) float64 {
	if backlogVolume <= 0 {
		return 0
	}
	return s.Capacity * backlogVolume / (backlogVolume + s.HalfLoad)
}

// FluidQueueModel is the general Prop. 4 dynamic model: work arrives
// continuously within each period (uniform arrival times, post-deferral)
// and is served at μ(N) via fluid integration with sub-period Euler
// steps. With a ConstantService it converges to DynamicModel as the step
// count grows — the reduction Prop. 5 proves in closed form; the
// integration tests verify it numerically.
type FluidQueueModel struct {
	scn    *Scenario
	mu     ServiceCurve
	totals []float64
	inW    []float64
	outW   [][]float64
	n, m   int

	// Steps is the number of Euler sub-steps per period (default 24).
	Steps int
	// StartBacklog is the work pending at the start of period 1.
	StartBacklog float64
}

// NewFluidQueueModel validates and builds the model.
func NewFluidQueueModel(scn *Scenario, mu ServiceCurve, steps int) (*FluidQueueModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if mu == nil {
		return nil, fmt.Errorf("nil service curve: %w", ErrBadScenario)
	}
	if steps <= 0 {
		steps = 24
	}
	n, m := scn.Periods, len(scn.Betas)
	p := scn.NormReward()
	fq := &FluidQueueModel{
		scn:    scn,
		mu:     mu,
		totals: scn.TotalDemand(),
		n:      n,
		m:      m,
		Steps:  steps,
	}
	wfs := make([]waiting.UniformArrival, m)
	for j, beta := range scn.Betas {
		w, err := waiting.NewUniformArrival(beta, n, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		wfs[j] = w
	}
	fq.outW = make([][]float64, n)
	for i := 0; i < n; i++ {
		fq.outW[i] = make([]float64, n)
		for dt := 1; dt <= n-1; dt++ {
			if scn.NoWrap && i+dt >= n {
				continue
			}
			var s float64
			for j, d := range scn.Demand[i] {
				if d != 0 {
					s += d * wfs[j].DerivP(1, dt)
				}
			}
			fq.outW[i][dt] = s
		}
	}
	fq.inW = make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for dt := 1; dt <= n-1; dt++ {
			k := i - dt
			if k < 0 {
				k += n
			}
			s += fq.outW[k][dt]
		}
		fq.inW[i] = s
	}
	return fq, nil
}

// arrivals mirrors DynamicModel.arrivals.
func (fq *FluidQueueModel) arrivals(p []float64) (arr, in []float64) {
	n := fq.n
	arr = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		if pi := p[i]; pi > 0 {
			in[i] = pi * fq.inW[i]
		}
	}
	for i := 0; i < n; i++ {
		var out float64
		row := fq.outW[i]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		arr[i] = fq.totals[i] - out + in[i]
	}
	return arr, in
}

// Backlogs integrates the fluid queue and returns the end-of-period
// pending work N(i)·b for rewards p.
func (fq *FluidQueueModel) Backlogs(p []float64) []float64 {
	arr, _ := fq.arrivals(p)
	out := make([]float64, fq.n)
	q := fq.StartBacklog
	h := 1.0 / float64(fq.Steps)
	for i := 0; i < fq.n; i++ {
		rate := arr[i] // uniform within the period
		for s := 0; s < fq.Steps; s++ {
			q += h * (rate - fq.mu.Rate(q))
			if q < 0 {
				q = 0
			}
		}
		out[i] = q
	}
	return out
}

// CostAt evaluates Prop. 4's objective: rewards paid plus f on each
// period's remaining work.
func (fq *FluidQueueModel) CostAt(p []float64) float64 {
	arr, in := fq.arrivals(p)
	var c float64
	q := fq.StartBacklog
	h := 1.0 / float64(fq.Steps)
	for i := 0; i < fq.n; i++ {
		for s := 0; s < fq.Steps; s++ {
			q += h * (arr[i] - fq.mu.Rate(q))
			if q < 0 {
				q = 0
			}
		}
		c += p[i]*in[i] + fq.scn.Cost.Value(q)
	}
	return c
}

// TIPCost returns the no-reward cost.
func (fq *FluidQueueModel) TIPCost() float64 {
	return fq.CostAt(make([]float64, fq.n))
}

// Solve minimizes the fluid-queue cost with the homotopy solver and
// numeric gradients — the service curve is an arbitrary caller-supplied
// function, so no analytic adjoint is assumed.
func (fq *FluidQueueModel) Solve() (*Pricing, error) {
	bounds := optimize.UniformBounds(fq.n, 0, math.Min(fq.scn.Cost.MaxSlope(), fq.scn.NormReward()))
	x0 := make([]float64, fq.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective {
			return optimize.FuncObjective{Fn: func(p []float64) float64 {
				arr, in := fq.arrivals(p)
				var c float64
				q := fq.StartBacklog
				h := 1.0 / float64(fq.Steps)
				for i := 0; i < fq.n; i++ {
					for s := 0; s < fq.Steps; s++ {
						q += h * (arr[i] - fq.mu.Rate(q))
						if q < 0 {
							q = 0
						}
					}
					c += p[i]*in[i] + fq.scn.Cost.Smooth(q, mu)
				}
				return c
			}}
		},
		fq.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		optimize.WithMaxIterations(600), optimize.WithTolerance(1e-6),
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("fluid-queue solve: %w", err)
	}
	p := res.X
	arr, in := fq.arrivals(p)
	var outlay float64
	for i := 0; i < fq.n; i++ {
		outlay += p[i] * in[i]
	}
	return &Pricing{
		Rewards:      p,
		Usage:        arr,
		Cost:         fq.CostAt(p),
		TIPCost:      fq.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}
