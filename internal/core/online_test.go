package core

import (
	"errors"
	"math"
	"testing"

	"tdp/internal/waiting"
)

func TestNewOnlineOptimizerValidation(t *testing.T) {
	if _, err := NewOnlineOptimizer(paperDyn48(), OnlineConfig{Alpha: -0.5}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("alpha<0: err = %v, want ErrBadScenario", err)
	}
	if _, err := NewOnlineOptimizer(paperDyn48(), OnlineConfig{Alpha: 2}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("alpha>1: err = %v, want ErrBadScenario", err)
	}
	bad := paperDyn48()
	bad.Periods = 1
	if _, err := NewOnlineOptimizer(bad, OnlineConfig{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestOnlineDoesNotAliasCallerScenario(t *testing.T) {
	scn := paperDyn48()
	o, err := NewOnlineOptimizer(scn, OnlineConfig{UseDynamic: true})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	obs := make([]float64, len(scn.Betas))
	if _, err := o.Advance(obs); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	// The caller's demand must be untouched by the zero observation.
	if scn.Demand[0][0] != waiting.Dist48[0][0] {
		t.Error("Advance mutated the caller's scenario")
	}
	// But the internal estimate must have changed.
	if got := o.DemandEstimate()[0][0]; got != 0 {
		t.Errorf("estimate[0][0] = %v, want 0 after zero observation", got)
	}
}

func TestOnlineAdvanceErrors(t *testing.T) {
	o, err := NewOnlineOptimizer(paperDyn48(), OnlineConfig{UseDynamic: true})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	if _, err := o.Advance([]float64{1, 2}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("short observation: err = %v, want ErrBadScenario", err)
	}
	bad := make([]float64, 10)
	bad[3] = -1
	if _, err := o.Advance(bad); !errors.Is(err, ErrBadScenario) {
		t.Errorf("negative observation: err = %v, want ErrBadScenario", err)
	}
	if o.Elapsed() != 0 {
		t.Errorf("failed Advance must not consume a period; elapsed = %d", o.Elapsed())
	}
}

// TestOnlinePaperExperiment reproduces §V-B's online simulation: capacity
// 210 MBps, and the ISP observes 200 MBps arriving in period 1 instead of
// the estimated 230 MBps. The adjusted reward for period 1 must rise (the
// valley is now deeper, so deferring into it is more valuable), and the
// adjusted schedule must cost less than the nominal one on the actual
// demand.
func TestOnlinePaperExperiment(t *testing.T) {
	o, err := NewOnlineOptimizer(paperDyn48(), OnlineConfig{UseDynamic: true})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	nominal := o.Rewards()

	// Actual period-1 arrivals: 200 instead of 230 MBps, scaled uniformly
	// across types as in Table XI's style of perturbation.
	actual := scaleRow(waiting.Dist48[0][:], 20.0/23.0)
	if _, err := o.Advance(actual); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	adjusted := o.Rewards()

	if adjusted[0] <= nominal[0] {
		t.Errorf("period-1 reward should rise after demand drop: %v → %v",
			nominal[0], adjusted[0])
	}
	// Continue the day: remaining periods arrive as estimated.
	for i := 1; i < 48; i++ {
		if _, err := o.Advance(waiting.Dist48[i/2][:]); err != nil {
			t.Fatalf("Advance period %d: %v", i+1, err)
		}
	}
	if o.Elapsed() != 48 {
		t.Fatalf("elapsed = %d, want 48", o.Elapsed())
	}
	final := o.Rewards()
	// On the model with actual demand, the adapted schedule beats nominal.
	costNominal := o.CostAt(nominal)
	costFinal := o.CostAt(final)
	if costFinal >= costNominal {
		t.Errorf("online adaptation did not reduce cost: %v vs nominal %v",
			costFinal, costNominal)
	}
	// The paper reports ~5% improvement; accept any clear improvement but
	// flag an implausibly large one (>50%) as a model bug.
	improvement := (costNominal - costFinal) / costNominal
	if improvement > 0.5 {
		t.Errorf("improvement %v implausibly large", improvement)
	}
}

func TestOnlineStaticBackendRuns(t *testing.T) {
	s := paper12()
	o, err := NewOnlineOptimizer(s, OnlineConfig{UseDynamic: false, Alpha: 0.5})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	first := o.CurrentReward()
	if _, err := o.Advance(waiting.Dist12[0][:]); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if o.Elapsed() != 1 {
		t.Errorf("elapsed = %d, want 1", o.Elapsed())
	}
	// Observing exactly the estimate should leave the reward near its
	// offline value (re-optimizing one coordinate of a converged solution).
	if math.Abs(o.Rewards()[0]-first) > 0.05 {
		t.Errorf("reward moved %v → %v on a confirming observation", first, o.Rewards()[0])
	}
}

func TestOnlineEWMAUpdatesEstimate(t *testing.T) {
	o, err := NewOnlineOptimizer(paper12(), OnlineConfig{Alpha: 0.5})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	before := o.DemandEstimate()[0][0] // 4 (Table VIII period 1, β=0.5)
	obs := make([]float64, 10)         // all-zero observation
	if _, err := o.Advance(obs); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	after := o.DemandEstimate()[0][0]
	if math.Abs(after-before/2) > 1e-12 {
		t.Errorf("EWMA: estimate %v → %v, want halved", before, after)
	}
}

// TestOnlineMatchesOfflineOnNoWrapScenario is the regression test for the
// lossy cloneScenario bug: the online optimizer's internal copy dropped
// MaxRewardNorm and NoWrap, so its initial solve answered a different
// problem (wrapped deferrals, cost-scale normalization) than the offline
// solve of the very same scenario.
func TestOnlineMatchesOfflineOnNoWrapScenario(t *testing.T) {
	scn := paper12()
	scn.NoWrap = true
	scn.MaxRewardNorm = 1.5

	m, err := NewStaticModel(scn)
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	offline, err := m.Solve()
	if err != nil {
		t.Fatalf("offline solve: %v", err)
	}

	o, err := NewOnlineOptimizer(scn, OnlineConfig{})
	if err != nil {
		t.Fatalf("NewOnlineOptimizer: %v", err)
	}
	online := o.Rewards()
	for i := range offline.Rewards {
		if online[i] != offline.Rewards[i] {
			t.Fatalf("period %d: online init reward %v ≠ offline %v — scenario copy lost a field",
				i+1, online[i], offline.Rewards[i])
		}
	}
}

func scaleRow(row []float64, c float64) []float64 {
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = c * v
	}
	return out
}
