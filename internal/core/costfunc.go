// Package core implements the paper's contribution: cost-minimizing
// time-dependent price (reward) optimization for an ISP.
//
// It contains the static session model of §II (a convex program under
// Prop. 3's conditions), the offline dynamic session model of §III-A
// (single-bottleneck carry-over form of Props. 4–5), the online
// receding-horizon algorithm of §III-B, the non-convex definite-choice
// model of Appendix D, the fixed-duration session model of Appendix G,
// and the congestion-dependent "auto-pilot" extension sketched in §VII.
//
// Units follow the paper's simulations: demand in 10 MBps, money in $0.10,
// so e.g. a reward of 0.49 is $0.049.
package core

import (
	"errors"
	"fmt"

	"tdp/internal/optimize"
)

// ErrBadScenario is returned when a pricing scenario fails validation.
var ErrBadScenario = errors.New("core: invalid scenario")

// CostFunc is the ISP's cost of exceeding capacity, the paper's f. Prop. 3
// requires it to be increasing, convex, and piecewise-linear with bounded
// slope.
type CostFunc struct {
	// Breaks and Slopes define f(x) = Σ_k Slopes[k]·max(x − Breaks[k], 0).
	// Slopes must be non-negative (convexity); Breaks ascending.
	Breaks []float64
	Slopes []float64
}

// LinearCost returns the paper's simulation form f(x) = slope·max(x, 0).
func LinearCost(slope float64) CostFunc {
	return CostFunc{Breaks: []float64{0}, Slopes: []float64{slope}}
}

// Validate checks convexity (non-negative incremental slopes, at least one
// positive) and ordering of breakpoints.
func (f CostFunc) Validate() error {
	if len(f.Breaks) == 0 || len(f.Breaks) != len(f.Slopes) {
		return fmt.Errorf("cost with %d breaks, %d slopes: %w", len(f.Breaks), len(f.Slopes), ErrBadScenario)
	}
	var total float64
	for i, s := range f.Slopes {
		if s < 0 {
			return fmt.Errorf("cost slope %d is %v (< 0 breaks convexity): %w", i, s, ErrBadScenario)
		}
		total += s
		if i > 0 && f.Breaks[i] < f.Breaks[i-1] {
			return fmt.Errorf("cost breaks not ascending at %d: %w", i, ErrBadScenario)
		}
	}
	if total == 0 {
		return fmt.Errorf("cost has zero maximum slope: %w", ErrBadScenario)
	}
	return nil
}

// Value evaluates f(x).
func (f CostFunc) Value(x float64) float64 {
	var s float64
	for i, b := range f.Breaks {
		if d := x - b; d > 0 {
			s += f.Slopes[i] * d
		}
	}
	return s
}

// Deriv evaluates f'(x) (the right derivative at kinks).
func (f CostFunc) Deriv(x float64) float64 {
	var s float64
	for i, b := range f.Breaks {
		if x > b {
			s += f.Slopes[i]
		}
	}
	return s
}

// MaxSlope returns the maximum marginal cost of exceeding capacity, the
// paper's P — both the normalization reward for waiting functions and the
// natural upper bound for offered rewards in the static model.
func (f CostFunc) MaxSlope() float64 {
	var s float64
	for _, sl := range f.Slopes {
		s += sl
	}
	return s
}

// Smooth evaluates the softplus-smoothed cost at temperature mu; mu = 0
// gives the exact value.
func (f CostFunc) Smooth(x, mu float64) float64 {
	var s float64
	for i, b := range f.Breaks {
		s += f.Slopes[i] * optimize.SmoothMax(x-b, mu)
	}
	return s
}

// SmoothBoth evaluates the smoothed cost and its derivative together,
// sharing one exponential per breakpoint — the fused form the
// value+gradient evaluation path uses.
func (f CostFunc) SmoothBoth(x, mu float64) (v, d float64) {
	for i, b := range f.Breaks {
		sv, sd := optimize.SmoothMaxBoth(x-b, mu)
		v += f.Slopes[i] * sv
		d += f.Slopes[i] * sd
	}
	return v, d
}

// SmoothDeriv evaluates d/dx of the smoothed cost.
func (f CostFunc) SmoothDeriv(x, mu float64) float64 {
	var s float64
	for i, b := range f.Breaks {
		s += f.Slopes[i] * optimize.SmoothMaxDeriv(x-b, mu)
	}
	return s
}

// Scale returns the cost function with all slopes multiplied by a — the
// Fig. 6 sweep a·f(x).
func (f CostFunc) Scale(a float64) CostFunc {
	out := CostFunc{
		Breaks: append([]float64(nil), f.Breaks...),
		Slopes: make([]float64, len(f.Slopes)),
	}
	for i, s := range f.Slopes {
		out.Slopes[i] = a * s
	}
	return out
}
