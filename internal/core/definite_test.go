package core

import (
	"math"
	"testing"
)

func TestDefiniteChoiceValidation(t *testing.T) {
	s := paper12()
	s.Periods = 1
	if _, err := NewDefiniteChoiceModel(s); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestDefiniteChoiceZeroRewardsNobodyMoves(t *testing.T) {
	dc, err := NewDefiniteChoiceModel(paper12())
	if err != nil {
		t.Fatalf("NewDefiniteChoiceModel: %v", err)
	}
	zero := make([]float64, 12)
	for i, row := range dc.Choices(zero) {
		for j, k := range row {
			if k != -1 {
				t.Errorf("period %d type %d deferred to %d with zero rewards", i+1, j, k)
			}
		}
	}
	if got, want := dc.CostAt(zero), dc.TIPCost(); got != want {
		t.Errorf("CostAt(0) = %v, want TIPCost %v", got, want)
	}
}

func TestDefiniteChoiceHighRewardMovesTraffic(t *testing.T) {
	dc, err := NewDefiniteChoiceModel(paper12())
	if err != nil {
		t.Fatalf("NewDefiniteChoiceModel: %v", err)
	}
	dc.Threshold = 0.05
	// A big reward only on period 4 (the deepest valley, X=8).
	p := make([]float64, 12)
	p[3] = dc.scn.Cost.MaxSlope()
	x := dc.UsageAt(p)
	if x[3] <= dc.totals[3] {
		t.Errorf("usage in rewarded period did not grow: %v vs TIP %v", x[3], dc.totals[3])
	}
	// Conservation.
	var sx, sX float64
	for i := range x {
		sx += x[i]
		sX += dc.totals[i]
	}
	if math.Abs(sx-sX) > 1e-9 {
		t.Errorf("Σx = %v, ΣX = %v", sx, sX)
	}
	// Sessions defer to the argmax period only: with a single positive
	// reward all deferrals target period 4.
	for i, row := range dc.Choices(p) {
		for j, k := range row {
			if k != -1 && k != 3 {
				t.Errorf("period %d type %d deferred to %d, want 3", i+1, j, k)
			}
		}
	}
}

func TestDefiniteChoiceSolveNeverWorseThanTIP(t *testing.T) {
	dc, err := NewDefiniteChoiceModel(paper12())
	if err != nil {
		t.Fatalf("NewDefiniteChoiceModel: %v", err)
	}
	dc.Starts = 4
	pr, err := dc.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost > pr.TIPCost+1e-9 {
		t.Errorf("definite-choice solve cost %v above TIP %v", pr.Cost, pr.TIPCost)
	}
	if len(pr.Rewards) != 12 || len(pr.Usage) != 12 {
		t.Error("malformed pricing")
	}
}

func TestDefiniteChoiceThresholdMonotone(t *testing.T) {
	// Raising the threshold can only reduce the set of deferring sessions.
	dc, err := NewDefiniteChoiceModel(paper12())
	if err != nil {
		t.Fatalf("NewDefiniteChoiceModel: %v", err)
	}
	p := make([]float64, 12)
	p[3], p[4] = 1.2, 0.8
	count := func(th float64) int {
		dc.Threshold = th
		var c int
		for _, row := range dc.Choices(p) {
			for _, k := range row {
				if k >= 0 {
					c++
				}
			}
		}
		return c
	}
	low, high := count(0.01), count(0.9)
	if low < high {
		t.Errorf("deferral count grew with threshold: %d < %d", low, high)
	}
	if low == 0 {
		t.Error("no deferrals at low threshold with large rewards")
	}
}

func TestFixedDurationValidation(t *testing.T) {
	if _, err := NewFixedDurationModel(paper12(), 0, 1); err == nil {
		t.Error("zero departure rate accepted")
	}
	if _, err := NewFixedDurationModel(paper12(), 1, 0); err == nil {
		t.Error("zero session size accepted")
	}
	s := paper12()
	s.Betas = nil
	if _, err := NewFixedDurationModel(s, 1, 1); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestFixedDurationSessionDynamics(t *testing.T) {
	fm, err := NewFixedDurationModel(paper12(), 2, 1)
	if err != nil {
		t.Fatalf("NewFixedDurationModel: %v", err)
	}
	zero := make([]float64, 12)
	counts := fm.SessionCounts(zero)
	// With departure rate d and arrival rate ν, N converges toward ν/d;
	// counts must stay positive and bounded by max(ν)/d + start.
	maxNu := 0.0
	for _, x := range fm.totals {
		maxNu = math.Max(maxNu, x)
	}
	bound := maxNu/fm.DepartRate + 1
	for i, n := range counts {
		if n < 0 || n > bound {
			t.Errorf("N[%d] = %v outside (0, %v)", i, n, bound)
		}
	}
	// Doubling the departure rate lowers steady-state occupancy.
	fm2, err := NewFixedDurationModel(paper12(), 4, 1)
	if err != nil {
		t.Fatalf("NewFixedDurationModel: %v", err)
	}
	counts2 := fm2.SessionCounts(zero)
	if counts2[11] >= counts[11] {
		t.Errorf("faster departures did not lower occupancy: %v vs %v", counts2[11], counts[11])
	}
}

func TestFixedDurationSolve(t *testing.T) {
	// Pick capacity low enough that TIP congests.
	s := paper12()
	s.Capacity = constant(12, 9)
	s.Cost = LinearCost(1)
	fm, err := NewFixedDurationModel(s, 1, 1)
	if err != nil {
		t.Fatalf("NewFixedDurationModel: %v", err)
	}
	if fm.TIPCost() <= 0 {
		t.Fatal("scenario does not congest under TIP; test is vacuous")
	}
	pr, err := fm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost > pr.TIPCost+1e-9 {
		t.Errorf("fixed-duration TDP cost %v above TIP %v", pr.Cost, pr.TIPCost)
	}
	if pr.Cost >= pr.TIPCost {
		t.Errorf("no improvement from pricing: %v vs %v", pr.Cost, pr.TIPCost)
	}
}
