package core

import (
	"errors"
	"math"
	"testing"

	"tdp/internal/waiting"
)

func fluidScenario() *Scenario {
	return &Scenario{
		Periods:  12,
		Demand:   waiting.Demand12(),
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: constant(12, 18),
		Cost:     LinearCost(1),
	}
}

func TestNewFluidQueueValidation(t *testing.T) {
	if _, err := NewFluidQueueModel(fluidScenario(), nil, 10); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil curve: err = %v, want ErrBadScenario", err)
	}
	bad := fluidScenario()
	bad.Periods = 1
	if _, err := NewFluidQueueModel(bad, ConstantService{Capacity: 18}, 10); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestServiceCurves(t *testing.T) {
	c := ConstantService{Capacity: 18}
	if c.Rate(0) != 0 || c.Rate(-1) != 0 {
		t.Error("constant service must be 0 on an empty queue")
	}
	if c.Rate(5) != 18 {
		t.Errorf("Rate(5) = %v, want 18", c.Rate(5))
	}
	s := SaturatingService{Capacity: 18, HalfLoad: 10}
	if s.Rate(0) != 0 {
		t.Error("saturating service must be 0 on an empty queue")
	}
	if got := s.Rate(10); math.Abs(got-9) > 1e-12 {
		t.Errorf("Rate(halfload) = %v, want capacity/2", got)
	}
	if s.Rate(1e9) > 18 {
		t.Error("saturating service exceeds capacity")
	}
	// Non-decreasing.
	prev := 0.0
	for q := 0.5; q < 100; q *= 2 {
		if r := s.Rate(q); r < prev {
			t.Fatalf("rate decreasing at q=%v", q)
		} else {
			prev = r
		}
	}
}

// TestFluidQueueReducesToDynamicModel is the numerical Prop. 5 check on
// the general model: with a constant service curve the fluid integration
// must match DynamicModel's closed-form recursion.
func TestFluidQueueReducesToDynamicModel(t *testing.T) {
	scn := fluidScenario()
	fq, err := NewFluidQueueModel(scn, ConstantService{Capacity: 18}, 400)
	if err != nil {
		t.Fatalf("NewFluidQueueModel: %v", err)
	}
	dm, err := NewDynamicModel(scn)
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	for _, p := range [][]float64{
		make([]float64, 12),
		{0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3},
		{0, 0.8, 0.6, 0.4, 0.2, 0, 0, 0, 0, 0, 0, 0},
	} {
		fqCost := fq.CostAt(p)
		dmCost := dm.CostAt(p)
		if math.Abs(fqCost-dmCost) > 0.02*(1+dmCost) {
			t.Errorf("rewards %v: fluid cost %v vs closed-form %v", p, fqCost, dmCost)
		}
		fb := fq.Backlogs(p)
		_, db := dm.Load(p)
		for i := range fb {
			if math.Abs(fb[i]-db[i]) > 0.05*(1+db[i]) {
				t.Errorf("rewards %v period %d: backlog %v vs %v", p, i+1, fb[i], db[i])
			}
		}
	}
}

// TestFluidQueueSaturatingIsWorse: a service curve that degrades under
// load can only increase cost relative to the ideal constant-capacity
// bottleneck, and pricing still helps.
func TestFluidQueueSaturatingIsWorse(t *testing.T) {
	scn := fluidScenario()
	ideal, err := NewFluidQueueModel(scn, ConstantService{Capacity: 18}, 48)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := NewFluidQueueModel(scn, SaturatingService{Capacity: 18, HalfLoad: 6}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.TIPCost() <= ideal.TIPCost() {
		t.Errorf("degraded service TIP cost %v not above ideal %v",
			degraded.TIPCost(), ideal.TIPCost())
	}
	pr, err := degraded.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost >= pr.TIPCost {
		t.Errorf("pricing did not help the degraded network: %v vs %v", pr.Cost, pr.TIPCost)
	}
	// 1-D re-optimization cannot improve materially.
	work := append([]float64(nil), pr.Rewards...)
	for _, period := range []int{1, 6} {
		old := work[period]
		for _, cand := range []float64{0, 0.25, 0.5, 0.75, 1} {
			work[period] = cand
			if degraded.CostAt(work) < pr.Cost-0.05*(1+pr.Cost) {
				t.Errorf("period %d: candidate %v beat the solve", period+1, cand)
			}
		}
		work[period] = old
	}
}

func TestFluidQueueBacklogNonNegative(t *testing.T) {
	fq, err := NewFluidQueueModel(fluidScenario(), ConstantService{Capacity: 18}, 24)
	if err != nil {
		t.Fatal(err)
	}
	fq.StartBacklog = 5
	p := make([]float64, 12)
	for _, b := range fq.Backlogs(p) {
		if b < 0 {
			t.Fatal("negative backlog")
		}
	}
	if fq.TIPCost() <= 0 {
		t.Error("congested scenario must have positive cost")
	}
}

func TestFluidQueueDefaultSteps(t *testing.T) {
	fq, err := NewFluidQueueModel(fluidScenario(), ConstantService{Capacity: 18}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fq.Steps <= 0 {
		t.Errorf("Steps = %d, want positive default", fq.Steps)
	}
}
