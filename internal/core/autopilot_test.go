package core

import (
	"errors"
	"math"
	"testing"
)

func TestNewCongestionPricerValidation(t *testing.T) {
	if _, err := NewCongestionPricer(1.5, 1, 1); !errors.Is(err, ErrBadScenario) {
		t.Errorf("target>1: err = %v, want ErrBadScenario", err)
	}
	if _, err := NewCongestionPricer(0.8, 0, 1); !errors.Is(err, ErrBadScenario) {
		t.Errorf("zero gain: err = %v, want ErrBadScenario", err)
	}
	if _, err := NewCongestionPricer(0.8, 1, 0); !errors.Is(err, ErrBadScenario) {
		t.Errorf("zero max: err = %v, want ErrBadScenario", err)
	}
}

func TestCongestionPricerIdleRaisesDiscount(t *testing.T) {
	c, err := NewCongestionPricer(0.8, 0.5, 3)
	if err != nil {
		t.Fatalf("NewCongestionPricer: %v", err)
	}
	// Sustained idleness (10% utilization) raises the discount to cap.
	prev := 0.0
	for i := 0; i < 20; i++ {
		r := c.Update(0.1)
		if r < prev {
			t.Fatalf("discount fell while idle: %v < %v", r, prev)
		}
		prev = r
	}
	if prev != 3 {
		t.Errorf("reward = %v, want capped at 3", prev)
	}
	// Sustained congestion (120%) removes the discount entirely.
	for i := 0; i < 40; i++ {
		c.Update(1.2)
	}
	if c.Reward() != 0 {
		t.Errorf("reward = %v under congestion, want 0", c.Reward())
	}
}

func TestCongestionPricerAtSetpointHolds(t *testing.T) {
	c, err := NewCongestionPricer(0.8, 1, 2)
	if err != nil {
		t.Fatalf("NewCongestionPricer: %v", err)
	}
	c.Update(0.3) // push up to 0.5
	at := c.Reward()
	c.Update(0.8) // exactly on target: no change
	if c.Reward() != at {
		t.Errorf("reward moved at setpoint: %v → %v", at, c.Reward())
	}
}

func TestAutopilotDecisions(t *testing.T) {
	a := NewAutopilot(AutopilotConfig{
		SpendBudget:  50, // "$5 a month" in $0.10 units
		NeverDefer:   map[int]bool{9: true},
		PriceCeiling: 0.4,
	})
	// Cheap slot, plenty of budget → run.
	if d := a.Decide(0, 10, 0.3); d != RunNow {
		t.Errorf("cheap slot: %v, want RunNow", d)
	}
	// Expensive slot → wait for a discount.
	if d := a.Decide(0, 10, 1); d != Defer {
		t.Errorf("expensive slot: %v, want Defer", d)
	}
	// Never-defer class runs at any price.
	if d := a.Decide(9, 10, 3); d != RunNow {
		t.Errorf("never-defer type: %v, want RunNow", d)
	}
	// Exhaust the budget: both classes block.
	a.RecordSpend(48)
	if d := a.Decide(0, 10, 0.3); d != Blocked {
		t.Errorf("over budget: %v, want Blocked", d)
	}
	if d := a.Decide(9, 10, 0.3); d != Blocked {
		t.Errorf("over budget never-defer: %v, want Blocked", d)
	}
	// A session small enough to fit the remaining budget still runs.
	if d := a.Decide(0, 5, 0.3); d != RunNow {
		t.Errorf("within remaining budget: %v, want RunNow", d)
	}
}

func TestAutopilotNoCeiling(t *testing.T) {
	a := NewAutopilot(AutopilotConfig{})
	if d := a.Decide(0, 100, 5); d != RunNow {
		t.Errorf("no ceiling, no budget: %v, want RunNow", d)
	}
}

func TestAutopilotSpendAccounting(t *testing.T) {
	a := NewAutopilot(AutopilotConfig{SpendBudget: 10})
	a.RecordSpend(4)
	a.RecordSpend(-3) // ignored
	if a.Spent() != 4 {
		t.Errorf("Spent = %v, want 4", a.Spent())
	}
	if a.Remaining() != 6 {
		t.Errorf("Remaining = %v, want 6", a.Remaining())
	}
	a.ResetCycle()
	if a.Spent() != 0 {
		t.Errorf("Spent after reset = %v, want 0", a.Spent())
	}
	unlimited := NewAutopilot(AutopilotConfig{})
	if !math.IsInf(unlimited.Remaining(), 1) {
		t.Errorf("unlimited Remaining = %v, want +Inf", unlimited.Remaining())
	}
}

// TestAutopilotControlLoop drives the full §VII loop: a congestion wave, a
// pricer reacting to it, and a budget autopilot that ends up served almost
// entirely from idle slots.
func TestAutopilotControlLoop(t *testing.T) {
	pricer, err := NewCongestionPricer(0.8, 0.3, 0.9)
	if err != nil {
		t.Fatalf("NewCongestionPricer: %v", err)
	}
	const basePrice = 1.0
	auto := NewAutopilot(AutopilotConfig{SpendBudget: 6, PriceCeiling: 0.3})

	// Square congestion wave: busy 30 slots, idle 30 slots, repeated.
	var ranBusy, ranIdle int
	pending := 40 // queued unit-volume sessions
	for slot := 0; slot < 240 && pending > 0; slot++ {
		busy := (slot/30)%2 == 0
		util := 0.35
		if busy {
			util = 1.1
		}
		reward := pricer.Update(util)
		price := math.Max(basePrice-reward, 0)
		if auto.Decide(0, 1, price) == RunNow {
			auto.RecordSpend(price)
			pending--
			if busy {
				ranBusy++
			} else {
				ranIdle++
			}
		}
	}
	if pending > 0 {
		t.Fatalf("%d sessions never ran", pending)
	}
	if ranIdle <= ranBusy*3 {
		t.Errorf("autopilot ran %d busy vs %d idle slots — should strongly prefer idle", ranBusy, ranIdle)
	}
	// The whole cycle stayed within the tiny budget.
	if auto.Spent() > 6 {
		t.Errorf("spent %v over budget 6", auto.Spent())
	}
	// And far below what full price would have cost (40 × 1.0).
	if auto.Spent() > 0.4*40*basePrice {
		t.Errorf("spent %v, want well below full price 40", auto.Spent())
	}
}
