package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"tdp/internal/optimize"
)

// equivScenario builds an n-period, 3-type scenario with deterministic
// pseudo-random demand for the fast-vs-reference equivalence sweeps.
func equivScenario(n int, seed int64, noWrap bool) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, n)
	for i := range demand {
		demand[i] = make([]float64, 3)
		for j := range demand[i] {
			demand[i][j] = 2 + 8*rng.Float64()
		}
	}
	return &Scenario{
		Periods:  n,
		Demand:   demand,
		Betas:    []float64{0.2, 1.0, 3.0},
		Capacity: constant(n, 18),
		Cost:     CostFunc{Breaks: []float64{0, 5}, Slopes: []float64{2, 1}},
		NoWrap:   noWrap,
	}
}

// randRewards draws a reward vector including zeros, negatives, and
// values beyond the box, to exercise every clamp branch.
func randRewards(n int, maxR float64, rng *rand.Rand) []float64 {
	p := make([]float64, n)
	for i := range p {
		switch rng.Intn(5) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = -0.5 * rng.Float64()
		default:
			p[i] = rng.Float64() * 1.2 * maxR
		}
	}
	return p
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// equivSizes are the period counts the acceptance criteria pin.
var equivSizes = []int{12, 24, 48, 96}

// TestStaticFastMatchesReference pins the flattened static evaluation
// paths — cost, usage, smoothed value, analytic gradient, and the fused
// value+gradient — to the preserved original implementations at ≤1e-12.
func TestStaticFastMatchesReference(t *testing.T) {
	for _, n := range equivSizes {
		for _, noWrap := range []bool{false, true} {
			sm, err := NewStaticModel(equivScenario(n, int64(n), noWrap))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			rng := rand.New(rand.NewSource(int64(n) * 7))
			grad := make([]float64, n)
			refGrad := make([]float64, n)
			fusedGrad := make([]float64, n)
			for trial := 0; trial < 25; trial++ {
				p := randRewards(n, sm.MaxReward(), rng)
				if d := relDiff(sm.CostAt(p), sm.ReferenceCostAt(p)); d > 1e-12 {
					t.Fatalf("n=%d noWrap=%v: CostAt diff %g", n, noWrap, d)
				}
				x, xr := sm.UsageAt(p), sm.ReferenceUsageAt(p)
				for i := range x {
					if d := relDiff(x[i], xr[i]); d > 1e-12 {
						t.Fatalf("n=%d noWrap=%v: usage[%d] diff %g", n, noWrap, i, d)
					}
				}
				for _, mu := range []float64{0, 0.003, 0.1, 1} {
					obj := sm.SmoothedObjective(mu)
					ref := sm.ReferenceObjective(mu)
					if d := relDiff(obj.Value(p), ref.Value(p)); d > 1e-12 {
						t.Fatalf("n=%d mu=%v: Value diff %g", n, mu, d)
					}
					obj.Grad(p, grad)
					ref.Grad(p, refGrad)
					for i := range grad {
						if d := relDiff(grad[i], refGrad[i]); d > 1e-12 {
							t.Fatalf("n=%d mu=%v: grad[%d] diff %g (%g vs %g)",
								n, mu, i, d, grad[i], refGrad[i])
						}
					}
					vg := obj.(optimize.ValueGrader)
					fv := vg.ValueGrad(p, fusedGrad)
					if d := relDiff(fv, ref.Value(p)); d > 1e-12 {
						t.Fatalf("n=%d mu=%v: fused value diff %g", n, mu, d)
					}
					for i := range fusedGrad {
						if d := relDiff(fusedGrad[i], refGrad[i]); d > 1e-12 {
							t.Fatalf("n=%d mu=%v: fused grad[%d] diff %g", n, mu, i, d)
						}
					}
				}
			}
		}
	}
}

// TestDynamicFastMatchesReference pins the dynamic model's flattened
// paths (cost, smoothed value, adjoint gradient, fused value+gradient) to
// the preserved originals at ≤1e-12.
func TestDynamicFastMatchesReference(t *testing.T) {
	for _, n := range equivSizes {
		dm, err := NewDynamicModel(equivScenario(n, int64(n)+100, false))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dm.StartBacklog = 2.5
		rng := rand.New(rand.NewSource(int64(n) * 13))
		grad := make([]float64, n)
		refGrad := make([]float64, n)
		fusedGrad := make([]float64, n)
		for trial := 0; trial < 25; trial++ {
			p := randRewards(n, dm.MaxReward(), rng)
			if d := relDiff(dm.CostAt(p), dm.ReferenceCostAt(p)); d > 1e-12 {
				t.Fatalf("n=%d: CostAt diff %g", n, d)
			}
			for _, mu := range []float64{0, 0.003, 0.1, 1} {
				obj := dm.smoothedObjective(mu)
				ref := dm.ReferenceObjective(mu)
				if d := relDiff(obj.Value(p), ref.Value(p)); d > 1e-12 {
					t.Fatalf("n=%d mu=%v: Value diff %g", n, mu, d)
				}
				// Gradients get extra slack: the backlog adjoint runs the
				// kernel dot's reassociation rounding through n sigmoid-
				// weighted recursion steps, so small-magnitude components
				// reach ~1e-11 relative difference at tight mu while values
				// stay within 1e-12.
				obj.Grad(p, grad)
				ref.Grad(p, refGrad)
				for i := range grad {
					if d := relDiff(grad[i], refGrad[i]); d > 1e-10 {
						t.Fatalf("n=%d mu=%v: grad[%d] diff %g", n, mu, i, d)
					}
				}
				vg := obj.(optimize.ValueGrader)
				fv := vg.ValueGrad(p, fusedGrad)
				if d := relDiff(fv, ref.Value(p)); d > 1e-12 {
					t.Fatalf("n=%d mu=%v: fused value diff %g", n, mu, d)
				}
				for i := range fusedGrad {
					if d := relDiff(fusedGrad[i], refGrad[i]); d > 1e-10 {
						t.Fatalf("n=%d mu=%v: fused grad[%d] diff %g", n, mu, i, d)
					}
				}
			}
		}
	}
}

// TestStaticSolveForPeriodMatchesReference checks the O(n) incremental
// coordinate solve lands on the reference full-evaluation Brent optimum.
func TestStaticSolveForPeriodMatchesReference(t *testing.T) {
	for _, n := range []int{12, 48} {
		sm, err := NewStaticModel(equivScenario(n, int64(n)+7, false))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 10; trial++ {
			p := randRewards(n, sm.MaxReward(), rng)
			period := rng.Intn(n)
			r, c, err := sm.SolveForPeriod(p, period)
			if err != nil {
				t.Fatal(err)
			}
			rr, cr, err := sm.ReferenceSolveForPeriod(p, period)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(c, cr); d > 1e-9 {
				t.Fatalf("n=%d period=%d: cost %v vs reference %v (diff %g, rewards %v vs %v)",
					n, period, c, cr, d, r, rr)
			}
		}
	}
}

// TestSolveForPeriodWarmMatchesCold checks warm-started coordinate solves
// land on the cold optimum (≤1e-9 in cost), both when the previous reward
// is near the optimum and when it is far enough that the warm bracket
// must fall back.
func TestSolveForPeriodWarmMatchesCold(t *testing.T) {
	sm, err := NewStaticModel(equivScenario(24, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p := randRewards(24, sm.MaxReward(), rng)
		period := rng.Intn(24)
		cold, err := sm.SolveForPeriodCold(p, period)
		if err != nil {
			t.Fatal(err)
		}
		for _, prev := range []float64{cold.Reward, 0, sm.MaxReward()} {
			warm, err := sm.SolveForPeriodWarm(p, period, prev)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(warm.Cost, cold.Cost); d > 1e-9 {
				t.Fatalf("period=%d prev=%v: warm cost %v vs cold %v (diff %g)",
					period, prev, warm.Cost, cold.Cost, d)
			}
		}
		// Seeded at the optimum, the warm bracket must suffice and must
		// spend fewer evaluations than the full-interval search.
		warm, err := sm.SolveForPeriodWarm(p, period, cold.Reward)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Warm {
			t.Fatalf("period=%d: warm solve seeded at the optimum fell back to the full bracket", period)
		}
		if warm.Evals >= cold.Evals {
			t.Fatalf("period=%d: warm solve used %d evals, cold %d", period, warm.Evals, cold.Evals)
		}
	}
}

// TestWarmStartSolveMatchesCold checks a warm-started full solve matches
// the cold optimum. The production path (SolverHomotopy — what the TUBE
// controller warm-starts day over day) must match to ≤1e-9 while spending
// fewer objective evaluations. SolverLBFGS is held to a looser 1e-5:
// quasi-Newton trajectories on the kinked cost landscape are
// path-dependent, and starting from a different point can settle a
// different (near-identical) critical point of the final polish; the
// truncated schedule is not the cause — a warm start through the full
// schedule lands no closer.
func TestWarmStartSolveMatchesCold(t *testing.T) {
	for _, tc := range []struct {
		solver  Solver
		costTol float64
		evals   bool // assert the warm solve evaluates less
	}{
		{SolverHomotopy, 1e-9, true},
		{SolverLBFGS, 1e-5, false},
	} {
		sm, err := NewStaticModel(paper12())
		if err != nil {
			t.Fatal(err)
		}
		cold, err := sm.SolveWith(tc.solver)
		if err != nil {
			t.Fatal(err)
		}
		// Perturb the cold optimum slightly, as day-to-day belief drift
		// would, and re-solve warm.
		warm := append([]float64(nil), cold.Rewards...)
		rng := rand.New(rand.NewSource(11))
		for i := range warm {
			warm[i] = math.Max(0, warm[i]+0.01*(rng.Float64()-0.5))
		}
		pr, err := sm.SolveWith(tc.solver, optimize.WithWarmStart(warm))
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(pr.Cost, cold.Cost); d > tc.costTol {
			t.Fatalf("solver %d: warm cost %v vs cold %v (diff %g)", tc.solver, pr.Cost, cold.Cost, d)
		}
		if tc.evals && pr.Evals >= cold.Evals {
			t.Fatalf("solver %d: warm solve used %d evals, cold %d", tc.solver, pr.Evals, cold.Evals)
		}
	}
}

// TestSetDemandRowMatchesRebuild checks the O(n·m) incremental kernel
// update is indistinguishable from rebuilding the model on the mutated
// scenario.
func TestSetDemandRowMatchesRebuild(t *testing.T) {
	scn := equivScenario(24, 17, false)
	sm, err := NewStaticModel(scn.Clone())
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDynamicModel(scn.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	cur := scn.Clone()
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(24)
		row := []float64{10 * rng.Float64(), 10 * rng.Float64(), 10 * rng.Float64()}
		copy(cur.Demand[i], row)
		if err := sm.SetDemandRow(i, row); err != nil {
			t.Fatal(err)
		}
		if err := dm.SetDemandRow(i, row); err != nil {
			t.Fatal(err)
		}
		smRef, err := NewStaticModel(cur.Clone())
		if err != nil {
			t.Fatal(err)
		}
		dmRef, err := NewDynamicModel(cur.Clone())
		if err != nil {
			t.Fatal(err)
		}
		p := randRewards(24, sm.MaxReward(), rng)
		if d := relDiff(sm.CostAt(p), smRef.CostAt(p)); d > 1e-12 {
			t.Fatalf("trial %d: static incremental cost diff %g", trial, d)
		}
		if d := relDiff(dm.CostAt(p), dmRef.CostAt(p)); d > 1e-12 {
			t.Fatalf("trial %d: dynamic incremental cost diff %g", trial, d)
		}
	}
	// Error paths must leave the model untouched.
	if err := sm.SetDemandRow(99, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected period range error")
	}
	if err := sm.SetDemandRow(0, []float64{1}); err == nil {
		t.Fatal("expected row width error")
	}
	if err := sm.SetDemandRow(0, []float64{1, -2, 3}); err == nil {
		t.Fatal("expected negative demand error")
	}
}

// TestPooledWorkspacesParallel hammers one model's pooled evaluation
// workspaces from many goroutines (as parallel multistarts do); run with
// -race it proves the pool keeps concurrent solves isolated, and the
// results must equal the single-threaded ones.
func TestPooledWorkspacesParallel(t *testing.T) {
	sm, err := NewStaticModel(equivScenario(24, 31, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	const workers = 8
	points := make([][]float64, 64)
	want := make([]float64, len(points))
	wantGrad := make([][]float64, len(points))
	obj := sm.SmoothedObjective(0.01).(optimize.ValueGrader)
	wantCost := make([]float64, len(points))
	for i := range points {
		points[i] = randRewards(24, sm.MaxReward(), rng)
		g := make([]float64, 24)
		want[i] = obj.ValueGrad(points[i], g)
		wantGrad[i] = g
		wantCost[i] = sm.CostAt(points[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			grad := make([]float64, 24)
			for rep := 0; rep < 20; rep++ {
				for i, p := range points {
					if got := obj.ValueGrad(p, grad); got != want[i] {
						t.Errorf("point %d: concurrent value %v, want %v", i, got, want[i])
						return
					}
					for k := range grad {
						if grad[k] != wantGrad[i][k] {
							t.Errorf("point %d: concurrent grad[%d] %v, want %v", i, k, grad[k], wantGrad[i][k])
							return
						}
					}
					// Exact equality against the serial fast-path baseline:
					// a pooled-workspace leak between goroutines would
					// perturb the deterministic sums. (Fast ≡ reference is
					// checked at tolerance in TestStaticFastMatchesReference;
					// the unrolled kernel dot reassociates, so the two paths
					// are not bit-identical.)
					if got := sm.CostAt(p); got != wantCost[i] {
						t.Errorf("point %d: concurrent CostAt mismatch", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDefiniteChoiceMultistartRace runs the definite-choice multistart
// with ≥8 workers over the pooled workspaces; under -race this checks the
// concurrent CostAt calls, and the result must not depend on parallelism.
func TestDefiniteChoiceMultistartRace(t *testing.T) {
	scn := equivScenario(12, 53, false)
	serial, err := NewDefiniteChoiceModel(scn.Clone())
	if err != nil {
		t.Fatal(err)
	}
	serial.Jobs = 1
	prSerial, err := serial.Solve()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewDefiniteChoiceModel(scn.Clone())
	if err != nil {
		t.Fatal(err)
	}
	parallel.Jobs = 8
	prParallel, err := parallel.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if prSerial.Cost != prParallel.Cost {
		t.Fatalf("parallel multistart cost %v, serial %v", prParallel.Cost, prSerial.Cost)
	}
}

// TestFixedDurationAdjointGradient checks the new analytic adjoint against
// numeric differentiation of the smoothed cost.
func TestFixedDurationAdjointGradient(t *testing.T) {
	fm, err := NewFixedDurationModel(equivScenario(12, 61, false), 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	fm.StartSessions = 3
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * 0.9 * fm.scn.NormReward()
		}
		for _, mu := range []float64{0.1, 0.01} {
			obj := fixedDurationObjective{fm: fm, mu: mu}
			grad := make([]float64, 12)
			obj.Grad(p, grad)
			num := make([]float64, 12)
			optimize.NumGrad(obj.Value, p, num)
			for i := range grad {
				if d := math.Abs(grad[i] - num[i]); d > 1e-5*(1+math.Abs(num[i])) {
					t.Fatalf("mu=%v grad[%d] = %v, numeric %v", mu, i, grad[i], num[i])
				}
			}
			fused := make([]float64, 12)
			fv := obj.ValueGrad(p, fused)
			if d := relDiff(fv, obj.Value(p)); d > 1e-12 {
				t.Fatalf("fused value diff %g", d)
			}
			for i := range fused {
				if fused[i] != grad[i] {
					t.Fatalf("fused grad[%d] %v != %v", i, fused[i], grad[i])
				}
			}
		}
	}
}

// TestDefiniteChoiceTableMatchesWaitingFuncs pins the tabulated argmax to
// direct waiting-function evaluation.
func TestDefiniteChoiceTableMatchesWaitingFuncs(t *testing.T) {
	dc, err := NewDefiniteChoiceModel(equivScenario(24, 83, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		p := randRewards(24, 1, rng)
		for i := 0; i < dc.n; i++ {
			for j := 0; j < dc.m; j++ {
				got := dc.choose(p, i, j)
				// Reference: the original direct evaluation.
				best, bestDt := 0.0, -1
				for dt := 1; dt <= dc.n-1; dt++ {
					k := (i + dt) % dc.n
					if v := dc.wfs[j].Value(p[k], dt); v > best {
						best, bestDt = v, dt
					}
				}
				want := -1
				if bestDt >= 0 && best >= dc.Threshold {
					want = (i + bestDt) % dc.n
				}
				if got != want {
					t.Fatalf("choose(%d,%d) = %d, want %d", i, j, got, want)
				}
			}
		}
	}
}
