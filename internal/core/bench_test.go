package core

import (
	"math/rand"
	"testing"

	"tdp/internal/optimize"
)

// benchRewards is a deterministic mid-box schedule exercising both active
// and clipped price regions.
func benchRewards(n int, maxR float64) []float64 {
	rng := rand.New(rand.NewSource(42))
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() * maxR
	}
	return p
}

// The eval-layer benchmarks pin the tentpole claims directly: the pooled
// kernel paths run at 0 allocs/op steady state, and the Ref twins measure
// the pre-flattening implementations they replaced.

func BenchmarkStaticCostAt(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, sm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = sm.CostAt(p)
	}
}

func BenchmarkStaticCostAtRef(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, sm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = sm.ReferenceCostAt(p)
	}
}

func BenchmarkStaticValueGrad(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	obj := sm.smoothedObjective(0.01).(optimize.ValueGrader)
	p := benchRewards(48, sm.MaxReward())
	grad := make([]float64, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = obj.ValueGrad(p, grad)
	}
}

func BenchmarkStaticValueGradRef(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	obj := sm.ReferenceObjective(0.01)
	p := benchRewards(48, sm.MaxReward())
	grad := make([]float64, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = obj.Value(p)
		obj.Grad(p, grad)
	}
}

func BenchmarkDynamicCostAt(b *testing.B) {
	dm, err := NewDynamicModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, dm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = dm.CostAt(p)
	}
}

func BenchmarkDynamicCostAtRef(b *testing.B) {
	dm, err := NewDynamicModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, dm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = dm.ReferenceCostAt(p)
	}
}

// The per-period solve benchmarks measure the online algorithm's inner
// step (§III-B): the O(n) incremental coordinate path, warm vs cold
// bracketing, and the original full-O(n²)-per-eval Brent search.

func BenchmarkSolveForPeriodWarm(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, sm.MaxReward())
	cold, err := sm.SolveForPeriodCold(p, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ps, err := sm.SolveForPeriodWarm(p, 7, cold.Reward)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ps.Cost
	}
}

func BenchmarkSolveForPeriodCold(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, sm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ps, err := sm.SolveForPeriodCold(p, 7)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ps.Cost
	}
}

func BenchmarkSolveForPeriodRef(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	p := benchRewards(48, sm.MaxReward())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, fbest, err := sm.ReferenceSolveForPeriod(p, 7)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = fbest
	}
}

// BenchmarkSetDemandRow measures the O(n·m) incremental kernel update the
// online optimizer uses instead of rebuilding the model each period.
func BenchmarkSetDemandRow(b *testing.B) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		b.Fatal(err)
	}
	row := append([]float64(nil), sm.scn.Demand[5]...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row[0] = 1 + float64(i%3)
		if err := sm.SetDemandRow(5, row); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink float64
