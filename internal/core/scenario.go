package core

import (
	"fmt"

	"tdp/internal/waiting"
)

// Scenario describes one pricing problem instance: the day structure,
// demand under time-independent pricing (TIP) broken down by session type,
// each type's patience, available capacity, and the ISP's cost of
// exceeding capacity.
type Scenario struct {
	// Periods is the number of periods n in a day (e.g. 48 half-hours).
	Periods int
	// Demand[i][j] is the TIP demand of session type j originally in
	// period i+1, in 10 MBps.
	Demand [][]float64
	// Betas[j] is the patience index of session type j.
	Betas []float64
	// Capacity[i] is the available capacity A_{i+1} in 10 MBps (already
	// adjusted for below-cap users and safety cushion, §II).
	Capacity []float64
	// Cost is the capacity-exceedance cost f.
	Cost CostFunc
	// PeriodSeconds is the real-time length of each period (for volume
	// metrics); defaults to 1800 s when zero.
	PeriodSeconds float64
	// MaxRewardNorm overrides the reward P at which waiting functions are
	// normalized (Σ_t w(P,t) = 1). Zero uses Cost.MaxSlope(), the paper's
	// default. Set it when sweeping the cost scale (Fig. 6): user behavior
	// is a fixed property and must not rescale with the ISP's cost.
	MaxRewardNorm float64
	// NoWrap disables deferrals across the day boundary (period k of one
	// day to period i of the next). The paper's formulation allows the
	// wrap (§II's i−k mod n), but its Appendix I tables are only
	// reproducible without it; see EXPERIMENTS.md.
	NoWrap bool
}

// Clone deep-copies the scenario, including every scalar option
// (MaxRewardNorm, NoWrap, PeriodSeconds), so mutations of the copy never
// reach the original. It lives next to the struct definition so that new
// fields cannot be silently dropped the way an out-of-package field-list
// copy can.
func (s *Scenario) Clone() *Scenario {
	cp := *s // copies all scalar fields, present and future
	cp.Betas = append([]float64(nil), s.Betas...)
	cp.Capacity = append([]float64(nil), s.Capacity...)
	cp.Cost = CostFunc{
		Breaks: append([]float64(nil), s.Cost.Breaks...),
		Slopes: append([]float64(nil), s.Cost.Slopes...),
	}
	cp.Demand = make([][]float64, len(s.Demand))
	for i, row := range s.Demand {
		cp.Demand[i] = append([]float64(nil), row...)
	}
	return &cp
}

// Validate checks structural consistency.
func (s *Scenario) Validate() error {
	if s.Periods < 2 {
		return fmt.Errorf("%d periods: %w", s.Periods, ErrBadScenario)
	}
	if len(s.Demand) != s.Periods {
		return fmt.Errorf("demand has %d periods, want %d: %w", len(s.Demand), s.Periods, ErrBadScenario)
	}
	if len(s.Betas) == 0 {
		return fmt.Errorf("no session types: %w", ErrBadScenario)
	}
	for _, b := range s.Betas {
		if b < 0 {
			return fmt.Errorf("patience index %v: %w", b, ErrBadScenario)
		}
	}
	for i, row := range s.Demand {
		if len(row) != len(s.Betas) {
			return fmt.Errorf("demand period %d has %d types, want %d: %w", i+1, len(row), len(s.Betas), ErrBadScenario)
		}
		for j, d := range row {
			if d < 0 {
				return fmt.Errorf("negative demand at period %d type %d: %w", i+1, j, ErrBadScenario)
			}
		}
	}
	if len(s.Capacity) != s.Periods {
		return fmt.Errorf("capacity has %d periods, want %d: %w", len(s.Capacity), s.Periods, ErrBadScenario)
	}
	for i, a := range s.Capacity {
		if a < 0 {
			return fmt.Errorf("negative capacity in period %d: %w", i+1, ErrBadScenario)
		}
	}
	if s.MaxRewardNorm < 0 {
		return fmt.Errorf("normalization reward %v: %w", s.MaxRewardNorm, ErrBadScenario)
	}
	return s.Cost.Validate()
}

// NormReward returns the reward at which waiting functions are normalized:
// the explicit override, or the maximum marginal cost of exceeding
// capacity.
func (s *Scenario) NormReward() float64 {
	if s.MaxRewardNorm > 0 {
		return s.MaxRewardNorm
	}
	return s.Cost.MaxSlope()
}

// TotalDemand returns the per-period TIP demand totals X_i.
func (s *Scenario) TotalDemand() []float64 {
	out := make([]float64, s.Periods)
	for i, row := range s.Demand {
		for _, d := range row {
			out[i] += d
		}
	}
	return out
}

// periodSeconds returns the period length, defaulting to half an hour.
func (s *Scenario) periodSeconds() float64 {
	if s.PeriodSeconds > 0 {
		return s.PeriodSeconds
	}
	return 1800
}

// buildWaitingFuncs constructs the normalized power-law waiting function
// for each session type, using the scenario's maximum marginal cost as the
// normalizing reward P (§II).
func (s *Scenario) buildWaitingFuncs() ([]waiting.PowerLaw, error) {
	p := s.NormReward()
	out := make([]waiting.PowerLaw, len(s.Betas))
	for j, beta := range s.Betas {
		w, err := waiting.NewPowerLaw(beta, s.Periods, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		out[j] = w
	}
	return out, nil
}

// Pricing is the outcome of a price optimization: the rewards, the
// resulting usage profile, and cost accounting.
type Pricing struct {
	// Rewards[i] is the optimal reward p_{i+1} in $0.10 for deferring
	// *to* period i+1.
	Rewards []float64
	// Usage[i] is the resulting TDP usage x_{i+1} in 10 MBps.
	Usage []float64
	// Cost is the ISP's total daily cost under TDP ($0.10 units):
	// rewards paid plus capacity-exceedance cost.
	Cost float64
	// TIPCost is the cost with no rewards offered (all p_i = 0).
	TIPCost float64
	// RewardOutlay is the portion of Cost paid out as rewards.
	RewardOutlay float64
	// Iterations and Evals report solver effort.
	Iterations, Evals int
}

// Savings returns the relative cost reduction of TDP vs TIP, e.g. 0.24 for
// the paper's 24% (§V-A).
func (p *Pricing) Savings() float64 {
	if p.TIPCost == 0 {
		return 0
	}
	return (p.TIPCost - p.Cost) / p.TIPCost
}
