package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// paperDyn48 is the §V-B offline dynamic scenario: Table VII arrivals,
// constant capacity 210 MBps, marginal over-capacity cost $0.10 (slope 1).
func paperDyn48() *Scenario {
	return &Scenario{
		Periods:  48,
		Demand:   waiting.Demand48(),
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: constant(48, 21),
		Cost:     LinearCost(1),
	}
}

func TestNewDynamicModelValidation(t *testing.T) {
	s := paperDyn48()
	s.Periods = 0
	if _, err := NewDynamicModel(s); !errors.Is(err, ErrBadScenario) {
		t.Errorf("bad scenario: err = %v, want ErrBadScenario", err)
	}
	s = paperDyn48()
	s.Cost = CostFunc{Breaks: []float64{-1}, Slopes: []float64{1}}
	if _, err := NewDynamicModel(s); !errors.Is(err, ErrBadScenario) {
		t.Errorf("negative break: err = %v, want ErrBadScenario", err)
	}
}

func TestDynamicZeroRewardBacklogRecursion(t *testing.T) {
	dm, err := NewDynamicModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	zero := make([]float64, 48)
	load, backlog := dm.Load(zero)
	// Hand-verify the recursion on the first few periods:
	// X = [23,23,20,20,...], A = 21.
	// z1 = 23−21 = 2 → backlog 2; load2 = 2+23 = 25, z2 = 4; load3 = 4+20 = 24, z3 = 3...
	wantLoad := []float64{23, 25, 24, 23, 18}
	wantBack := []float64{2, 4, 3, 2, 0}
	for i := range wantLoad {
		if math.Abs(load[i]-wantLoad[i]) > 1e-9 {
			t.Errorf("load[%d] = %v, want %v", i, load[i], wantLoad[i])
		}
		if math.Abs(backlog[i]-wantBack[i]) > 1e-9 {
			t.Errorf("backlog[%d] = %v, want %v", i, backlog[i], wantBack[i])
		}
	}
	// TIP cost = Σ f(z_i) = slope·Σ backlog_i (for slope-1 cost all
	// positive z contribute their value).
	var want float64
	for _, b := range backlog {
		want += b
	}
	if got := dm.TIPCost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TIPCost = %v, want Σbacklog = %v", got, want)
	}
}

func TestDynamicTIPCostExceedsStatic(t *testing.T) {
	// Carry-over makes the same traffic more costly than in the static
	// accounting with the same capacity/cost: backlog compounds.
	dyn, err := NewDynamicModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	static, err := NewStaticModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	if dyn.TIPCost() <= static.TIPCost() {
		t.Errorf("dynamic TIP cost %v not above static %v", dyn.TIPCost(), static.TIPCost())
	}
}

func TestDynamicAnalyticGradient(t *testing.T) {
	s := paperDyn48()
	s.Periods = 12
	s.Demand = waiting.Demand12()
	s.Capacity = constant(12, 18)
	dm, err := NewDynamicModel(s)
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	for _, mu := range []float64{0.5, 0.05} {
		obj := dm.smoothedObjective(mu)
		rng := rand.New(rand.NewSource(3))
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * 0.9
		}
		ana := make([]float64, 12)
		num := make([]float64, 12)
		obj.Grad(p, ana)
		optimize.NumGrad(obj.Value, p, num)
		for i := range ana {
			if math.Abs(ana[i]-num[i]) > 1e-4*(1+math.Abs(num[i])) {
				t.Errorf("mu=%v grad[%d]: analytic %v, numeric %v", mu, i, ana[i], num[i])
			}
		}
	}
}

func TestDynamicSolvePaper48(t *testing.T) {
	dm, err := NewDynamicModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	pr, err := dm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost >= pr.TIPCost {
		t.Fatalf("TDP cost %v not below TIP %v", pr.Cost, pr.TIPCost)
	}
	// Fig. 7: dynamic rewards are generally larger relative to the
	// marginal cost than the static ones — the static bound is P/2; the
	// dynamic optimum should break it somewhere (the "$0.15 barrier").
	maxR := 0.0
	for _, r := range pr.Rewards {
		maxR = math.Max(maxR, r)
	}
	if maxR <= dm.MaxReward()/2 {
		t.Errorf("max dynamic reward %v does not exceed P/2 = %v (Fig. 7 barrier)",
			maxR, dm.MaxReward()/2)
	}
	for i, r := range pr.Rewards {
		if r < -1e-12 || r > dm.MaxReward()+1e-9 {
			t.Errorf("reward[%d] = %v outside [0, P]", i+1, r)
		}
	}
	// Fig. 8: the TDP offered-load profile has much lower residue than
	// TIP's because backlog no longer compounds.
	tipLoad, _ := dm.Load(make([]float64, 48))
	tdpLoad, _ := dm.Load(pr.Rewards)
	if spread(tdpLoad) >= spread(tipLoad) {
		t.Errorf("TDP load spread %v not below TIP %v", spread(tdpLoad), spread(tipLoad))
	}
	// Backlog at most periods should be reduced.
	_, tipB := dm.Load(make([]float64, 48))
	_, tdpB := dm.Load(pr.Rewards)
	if sum(tdpB) >= sum(tipB) {
		t.Errorf("TDP total backlog %v not below TIP %v", sum(tdpB), sum(tipB))
	}
}

func TestDynamicArrivalConservation(t *testing.T) {
	dm, err := NewDynamicModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := make([]float64, 48)
		for i := range p {
			p[i] = rng.Float64() * dm.MaxReward()
		}
		arr := dm.Arrivals(p)
		var sa, sX float64
		for i := range arr {
			sa += arr[i]
			sX += dm.totals[i]
			if arr[i] < -1e-9 {
				t.Fatalf("negative arrivals %v in period %d", arr[i], i+1)
			}
		}
		if math.Abs(sa-sX) > 1e-6 {
			t.Fatalf("Σarr = %v, ΣX = %v", sa, sX)
		}
	}
}

func TestDynamicSolveForPeriodOptimality(t *testing.T) {
	s := paperDyn48()
	s.Periods = 12
	s.Demand = waiting.Demand12()
	s.Capacity = constant(12, 18)
	dm, err := NewDynamicModel(s)
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	pr, err := dm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, period := range []int{0, 6, 11} {
		_, cost, err := dm.SolveForPeriod(pr.Rewards, period)
		if err != nil {
			t.Fatalf("SolveForPeriod: %v", err)
		}
		if cost < pr.Cost-1e-4 {
			t.Errorf("period %d: 1-D reopt improved %v → %v", period+1, pr.Cost, cost)
		}
	}
	if _, _, err := dm.SolveForPeriod(pr.Rewards, -1); !errors.Is(err, ErrBadScenario) {
		t.Errorf("negative period: err = %v, want ErrBadScenario", err)
	}
}

func TestDynamicStartBacklog(t *testing.T) {
	dm, err := NewDynamicModel(paperDyn48())
	if err != nil {
		t.Fatalf("NewDynamicModel: %v", err)
	}
	base := dm.TIPCost()
	dm.StartBacklog = 10
	if dm.TIPCost() <= base {
		t.Error("starting backlog must increase cost")
	}
}

func spread(x []float64) float64 {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var s float64
	for _, v := range x {
		s += math.Abs(v - mean)
	}
	return s
}

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
