package core

import (
	"fmt"
	"math"
	"math/rand"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// DefiniteChoiceModel is Appendix D's alternative to the probabilistic
// waiting-function model: each session defers *deterministically* to the
// single period that maximizes its waiting function, rather than spreading
// probabilistically across periods.
//
// The paper notes this model's optimization problem is likely non-convex;
// indeed the cost here is piecewise-constant-in-argmax and is minimized by
// multistart coordinate descent rather than the convex machinery.
//
// Concretization: the paper leaves the "stay" alternative implicit. Here a
// session of type j in period i defers to t* = argmax_t w_j(p_{i+t}, t)
// iff w_j(p_{i+t*}, t*) ≥ Threshold, reading the waiting-function value as
// the propensity to defer (Threshold 0.5 = "more likely than not").
type DefiniteChoiceModel struct {
	scn    *Scenario
	wfs    []waiting.PowerLaw
	totals []float64
	n, m   int

	// Threshold is the minimum waiting-function value at which a session
	// commits to deferring (default 0.5; see type comment).
	Threshold float64
	// Starts is the number of multistart seeds for the non-convex solve
	// (default 8).
	Starts int
	// Seed makes the multistart deterministic.
	Seed int64
	// Jobs bounds the number of concurrent restarts (≤ 0: one per CPU).
	// Results are identical for every value; see optimize.MultistartJobs.
	Jobs int
}

// NewDefiniteChoiceModel validates the scenario and builds the model.
func NewDefiniteChoiceModel(scn *Scenario) (*DefiniteChoiceModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	wfs, err := scn.buildWaitingFuncs()
	if err != nil {
		return nil, err
	}
	return &DefiniteChoiceModel{
		scn:       scn,
		wfs:       wfs,
		totals:    scn.TotalDemand(),
		n:         scn.Periods,
		m:         len(scn.Betas),
		Threshold: 0.5,
		Starts:    8,
		Seed:      1,
	}, nil
}

// Choices returns, for each period i and type j, the deferral target
// period index (or −1 for staying) under rewards p.
func (dc *DefiniteChoiceModel) Choices(p []float64) [][]int {
	out := make([][]int, dc.n)
	for i := 0; i < dc.n; i++ {
		out[i] = make([]int, dc.m)
		for j := 0; j < dc.m; j++ {
			out[i][j] = dc.choose(p, i, j)
		}
	}
	return out
}

// choose finds type j's deferral target from period i, or −1 to stay.
func (dc *DefiniteChoiceModel) choose(p []float64, i, j int) int {
	best, bestDt := 0.0, -1
	for dt := 1; dt <= dc.n-1; dt++ {
		k := (i + dt) % dc.n
		if v := dc.wfs[j].Value(p[k], dt); v > best {
			best, bestDt = v, dt
		}
	}
	if bestDt < 0 || best < dc.Threshold {
		return -1
	}
	return (i + bestDt) % dc.n
}

// UsageAt returns the usage profile after definite-choice deferrals.
func (dc *DefiniteChoiceModel) UsageAt(p []float64) []float64 {
	x := append([]float64(nil), dc.totals...)
	for i := 0; i < dc.n; i++ {
		for j := 0; j < dc.m; j++ {
			if k := dc.choose(p, i, j); k >= 0 {
				d := dc.scn.Demand[i][j]
				x[i] -= d
				x[k] += d
			}
		}
	}
	return x
}

// CostAt evaluates the objective (23): rewards paid to deferred sessions
// plus the capacity-exceedance cost.
func (dc *DefiniteChoiceModel) CostAt(p []float64) float64 {
	x := append([]float64(nil), dc.totals...)
	var rewards float64
	for i := 0; i < dc.n; i++ {
		for j := 0; j < dc.m; j++ {
			if k := dc.choose(p, i, j); k >= 0 {
				d := dc.scn.Demand[i][j]
				x[i] -= d
				x[k] += d
				rewards += p[k] * d
			}
		}
	}
	c := rewards
	for i := 0; i < dc.n; i++ {
		c += dc.scn.Cost.Value(x[i] - dc.scn.Capacity[i])
	}
	return c
}

// TIPCost returns the no-reward cost.
func (dc *DefiniteChoiceModel) TIPCost() float64 {
	return dc.CostAt(make([]float64, dc.n))
}

// Solve searches for good rewards with multistart coordinate descent; the
// returned pricing is the best local solution found, with no global
// optimality guarantee (the problem is non-convex, Appendix D).
func (dc *DefiniteChoiceModel) Solve() (*Pricing, error) {
	bounds := optimize.UniformBounds(dc.n, 0, math.Min(dc.scn.Cost.MaxSlope(), dc.scn.NormReward()))
	rng := rand.New(rand.NewSource(dc.Seed))
	starts := dc.Starts
	if starts < 1 {
		starts = 1
	}
	solve := func(x0 []float64) (optimize.Result, error) {
		return optimize.CoordinateDescent(dc.CostAt, x0, bounds,
			optimize.WithMaxIterations(60), optimize.WithTolerance(1e-6))
	}
	res, err := optimize.MultistartJobs(solve, make([]float64, dc.n), bounds, starts, rng, dc.Jobs)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("definite-choice solve: %w", err)
	}
	// Zero rewards is always feasible; never return anything worse.
	if tip := dc.TIPCost(); tip < res.F {
		res.X = make([]float64, dc.n)
		res.F = tip
	}
	return &Pricing{
		Rewards: res.X,
		Usage:   dc.UsageAt(res.X),
		Cost:    res.F,
		TIPCost: dc.TIPCost(),
	}, nil
}
