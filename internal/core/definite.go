package core

import (
	"fmt"
	"math"
	"math/rand"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// DefiniteChoiceModel is Appendix D's alternative to the probabilistic
// waiting-function model: each session defers *deterministically* to the
// single period that maximizes its waiting function, rather than spreading
// probabilistically across periods.
//
// The paper notes this model's optimization problem is likely non-convex;
// indeed the cost here is piecewise-constant-in-argmax and is minimized by
// multistart coordinate descent rather than the convex machinery.
//
// Concretization: the paper leaves the "stay" alternative implicit. Here a
// session of type j in period i defers to t* = argmax_t w_j(p_{i+t}, t)
// iff w_j(p_{i+t*}, t*) ≥ Threshold, reading the waiting-function value as
// the propensity to defer (Threshold 0.5 = "more likely than not").
//
// The power-law decays (t+1)^{−β_j} are tabulated at construction so the
// argmax inner loop — the hot path of every multistart restart — runs with
// no math.Pow calls and no allocation; the products keep the same
// association as waiting.PowerLaw.Value, so choices are bit-identical to
// evaluating the waiting functions directly.
type DefiniteChoiceModel struct {
	scn    *Scenario
	wfs    []waiting.PowerLaw
	totals []float64
	powTab []float64 // m × n, powTab[j*n+dt] = (dt+1)^{−β_j}; [j*n+0] unused
	ws     wsPool
	n, m   int

	// Threshold is the minimum waiting-function value at which a session
	// commits to deferring (default 0.5; see type comment).
	Threshold float64
	// Starts is the number of multistart seeds for the non-convex solve
	// (default 8).
	Starts int
	// Seed makes the multistart deterministic.
	Seed int64
	// Jobs bounds the number of concurrent restarts (≤ 0: one per CPU).
	// Results are identical for every value; see optimize.MultistartJobs.
	Jobs int
}

// NewDefiniteChoiceModel validates the scenario and builds the model.
func NewDefiniteChoiceModel(scn *Scenario) (*DefiniteChoiceModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	wfs, err := scn.buildWaitingFuncs()
	if err != nil {
		return nil, err
	}
	n, m := scn.Periods, len(scn.Betas)
	dc := &DefiniteChoiceModel{
		scn:       scn,
		wfs:       wfs,
		totals:    scn.TotalDemand(),
		powTab:    make([]float64, m*n),
		n:         n,
		m:         m,
		Threshold: 0.5,
		Starts:    8,
		Seed:      1,
	}
	for j, beta := range scn.Betas {
		row := dc.powTab[j*n : j*n+n]
		for dt := 1; dt <= n-1; dt++ {
			row[dt] = math.Pow(float64(dt+1), -beta)
		}
	}
	dc.ws.init(n)
	return dc, nil
}

// Choices returns, for each period i and type j, the deferral target
// period index (or −1 for staying) under rewards p.
func (dc *DefiniteChoiceModel) Choices(p []float64) [][]int {
	out := make([][]int, dc.n)
	for i := 0; i < dc.n; i++ {
		out[i] = make([]int, dc.m)
		for j := 0; j < dc.m; j++ {
			out[i][j] = dc.choose(p, i, j)
		}
	}
	return out
}

// choose finds type j's deferral target from period i, or −1 to stay.
// The comparison value (c_j·p_k)·(dt+1)^{−β_j} multiplies in the same
// order as waiting.PowerLaw.Value, so the argmax matches it exactly.
func (dc *DefiniteChoiceModel) choose(p []float64, i, j int) int {
	n := dc.n
	c := dc.wfs[j].Norm()
	row := dc.powTab[j*n : j*n+n]
	best, bestDt := 0.0, -1
	for dt := 1; dt <= n-1; dt++ {
		k := i + dt
		if k >= n {
			k -= n
		}
		if pk := p[k]; pk > 0 {
			if v := c * pk * row[dt]; v > best {
				best, bestDt = v, dt
			}
		}
	}
	if bestDt < 0 || best < dc.Threshold {
		return -1
	}
	k := i + bestDt
	if k >= n {
		k -= n
	}
	return k
}

// UsageAt returns the usage profile after definite-choice deferrals.
func (dc *DefiniteChoiceModel) UsageAt(p []float64) []float64 {
	x := append([]float64(nil), dc.totals...)
	dc.applyChoices(p, x, nil)
	return x
}

// applyChoices moves each deferring session's demand in x and, when
// rewards is non-nil, accumulates the reward outlay into *rewards.
func (dc *DefiniteChoiceModel) applyChoices(p, x []float64, rewards *float64) {
	for i := 0; i < dc.n; i++ {
		for j := 0; j < dc.m; j++ {
			if k := dc.choose(p, i, j); k >= 0 {
				d := dc.scn.Demand[i][j]
				x[i] -= d
				x[k] += d
				if rewards != nil {
					*rewards += p[k] * d
				}
			}
		}
	}
}

// CostAt evaluates the objective (23): rewards paid to deferred sessions
// plus the capacity-exceedance cost.
func (dc *DefiniteChoiceModel) CostAt(p []float64) float64 {
	w := dc.ws.get()
	defer dc.ws.put(w)
	copy(w.x, dc.totals)
	var rewards float64
	dc.applyChoices(p, w.x, &rewards)
	c := rewards
	for i := 0; i < dc.n; i++ {
		c += dc.scn.Cost.Value(w.x[i] - dc.scn.Capacity[i])
	}
	return c
}

// TIPCost returns the no-reward cost.
func (dc *DefiniteChoiceModel) TIPCost() float64 {
	w := dc.ws.get()
	zero := w.pwork
	for i := range zero {
		zero[i] = 0
	}
	c := dc.CostAt(zero)
	dc.ws.put(w)
	return c
}

// Solve searches for good rewards with multistart coordinate descent; the
// returned pricing is the best local solution found, with no global
// optimality guarantee (the problem is non-convex, Appendix D). A
// optimize.WithWarmStart option replaces the deterministic zero start with
// the warm point; the random restarts still run, since a warm point must
// not suppress exploration on a non-convex landscape.
func (dc *DefiniteChoiceModel) Solve(opts ...optimize.Option) (*Pricing, error) {
	bounds := optimize.UniformBounds(dc.n, 0, math.Min(dc.scn.Cost.MaxSlope(), dc.scn.NormReward()))
	rng := rand.New(rand.NewSource(dc.Seed))
	starts := dc.Starts
	if starts < 1 {
		starts = 1
	}
	x0 := make([]float64, dc.n)
	if warm := optimize.WarmStartOf(opts); warm != nil {
		copy(x0, warm)
	}
	solve := func(x0 []float64) (optimize.Result, error) {
		return optimize.CoordinateDescent(dc.CostAt, x0, bounds,
			optimize.WithMaxIterations(60), optimize.WithTolerance(1e-6))
	}
	res, err := optimize.MultistartJobs(solve, x0, bounds, starts, rng, dc.Jobs)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("definite-choice solve: %w", err)
	}
	// Zero rewards is always feasible; never return anything worse.
	if tip := dc.TIPCost(); tip < res.F {
		res.X = make([]float64, dc.n)
		res.F = tip
	}
	return &Pricing{
		Rewards: res.X,
		Usage:   dc.UsageAt(res.X),
		Cost:    res.F,
		TIPCost: dc.TIPCost(),
	}, nil
}
