package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// paper48 is the §V-A static scenario: Table VII demand, A = 180 MBps,
// f(x) = 3·max(x, 0), 48 half-hour periods, units of 10 MBps and $0.10.
func paper48() *Scenario {
	return &Scenario{
		Periods:  48,
		Demand:   waiting.Demand48(),
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: constant(48, 18),
		Cost:     LinearCost(3),
	}
}

// paper12 is the 12-period variant used for the perturbation studies:
// Table VIII demand, A = 180 MBps, f slope 3.
func paper12() *Scenario {
	return &Scenario{
		Periods:  12,
		Demand:   waiting.Demand12(),
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: constant(12, 18),
		Cost:     LinearCost(3),
	}
}

func constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestScenarioValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"too few periods", func(s *Scenario) { s.Periods = 1 }},
		{"demand length", func(s *Scenario) { s.Demand = s.Demand[:5] }},
		{"no types", func(s *Scenario) { s.Betas = nil }},
		{"negative beta", func(s *Scenario) { s.Betas[0] = -1 }},
		{"ragged demand", func(s *Scenario) { s.Demand[3] = s.Demand[3][:2] }},
		{"negative demand", func(s *Scenario) { s.Demand[0][0] = -1 }},
		{"capacity length", func(s *Scenario) { s.Capacity = s.Capacity[:3] }},
		{"negative capacity", func(s *Scenario) { s.Capacity[0] = -5 }},
		{"bad cost", func(s *Scenario) { s.Cost = CostFunc{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := paper12()
			tt.mutate(s)
			if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
			if _, err := NewStaticModel(s); err == nil {
				t.Error("NewStaticModel accepted invalid scenario")
			}
		})
	}
	if err := paper48().Validate(); err != nil {
		t.Errorf("paper scenario rejected: %v", err)
	}
}

func TestStaticTIPCost(t *testing.T) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	// Hand computation from Table VII: total excess over A=18 across the
	// day is 142 units of 10 MBps (the paper's Table V would give 144; its
	// own Table VII is one unit lower at periods 45&46), so TIP cost is
	// 3·142 = 426 in $0.10 units.
	if got := sm.TIPCost(); math.Abs(got-426) > 1e-9 {
		t.Errorf("TIPCost = %v, want 426", got)
	}
}

func TestStaticZeroRewardsIsTIP(t *testing.T) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	zero := make([]float64, 48)
	if got, want := sm.CostAt(zero), sm.TIPCost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CostAt(0) = %v, want TIPCost %v", got, want)
	}
	x := sm.UsageAt(zero)
	for i, xi := range x {
		if math.Abs(xi-sm.totals[i]) > 1e-9 {
			t.Errorf("usage[%d] = %v, want TIP demand %v", i, xi, sm.totals[i])
		}
	}
}

func TestStaticUsageConservation(t *testing.T) {
	// TDP never destroys sessions: Σx_i = ΣX_i for any rewards in box.
	sm, err := NewStaticModel(paper48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		p := make([]float64, 48)
		for i := range p {
			p[i] = rng.Float64() * sm.MaxReward()
		}
		x := sm.UsageAt(p)
		var sx, sX float64
		for i := range x {
			sx += x[i]
			sX += sm.totals[i]
		}
		if math.Abs(sx-sX) > 1e-6 {
			t.Fatalf("trial %d: Σx = %v, ΣX = %v", trial, sx, sX)
		}
		// Usage never negative: normalization caps deferred-out at demand.
		for i, xi := range x {
			if xi < -1e-9 {
				t.Fatalf("trial %d: negative usage %v in period %d", trial, xi, i+1)
			}
		}
	}
}

func TestStaticDeferredMatrixConsistency(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	p := make([]float64, 12)
	for i := range p {
		p[i] = 0.1 * float64(i%4)
	}
	q := sm.DeferredMatrix(p)
	x := sm.UsageAt(p)
	for i := 0; i < 12; i++ {
		if q[i][i] != 0 {
			t.Errorf("Q[%d][%d] = %v, want 0", i, i, q[i][i])
		}
		var in, out float64
		for k := 0; k < 12; k++ {
			in += q[k][i]
			out += q[i][k]
		}
		want := sm.totals[i] - out + in
		if math.Abs(x[i]-want) > 1e-9 {
			t.Errorf("period %d: usage %v, flow-balance %v", i+1, x[i], want)
		}
	}
}

func TestStaticAnalyticGradient(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	for _, mu := range []float64{0.5, 0.05} {
		obj := sm.smoothedObjective(mu)
		rng := rand.New(rand.NewSource(7))
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * 1.4
		}
		ana := make([]float64, 12)
		num := make([]float64, 12)
		obj.Grad(p, ana)
		optimize.NumGrad(obj.Value, p, num)
		for i := range ana {
			if math.Abs(ana[i]-num[i]) > 1e-4*(1+math.Abs(num[i])) {
				t.Errorf("mu=%v grad[%d]: analytic %v, numeric %v", mu, i, ana[i], num[i])
			}
		}
	}
}

// Property: the smoothed objective is convex along random segments
// (Prop. 3), i.e. f(midpoint) ≤ (f(a)+f(b))/2.
func TestStaticConvexityProperty(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 12)
		b := make([]float64, 12)
		mid := make([]float64, 12)
		for i := range a {
			a[i] = rng.Float64() * 1.5
			b[i] = rng.Float64() * 1.5
			mid[i] = (a[i] + b[i]) / 2
		}
		return sm.CostAt(mid) <= (sm.CostAt(a)+sm.CostAt(b))/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStaticSolvePaper48(t *testing.T) {
	sm, err := NewStaticModel(paper48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	pr, err := sm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost >= pr.TIPCost {
		t.Fatalf("TDP cost %v not below TIP cost %v", pr.Cost, pr.TIPCost)
	}
	// Paper: ~24% savings. Shape criterion: 10–40%.
	if s := pr.Savings(); s < 0.10 || s > 0.40 {
		t.Errorf("savings = %v, want within [0.10, 0.40] (paper: 0.24)", s)
	}
	// Paper §V-A: with linear waiting functions the ISP never offers more
	// than half the maximum marginal benefit, $0.15 = 1.5 units.
	for i, r := range pr.Rewards {
		if r > 1.5+1e-6 {
			t.Errorf("reward[%d] = %v exceeds the $0.15 bound", i+1, r)
		}
		if r < 0 {
			t.Errorf("reward[%d] = %v negative", i+1, r)
		}
	}
	// At least some rewards are positive (TDP is actually used).
	var positive int
	for _, r := range pr.Rewards {
		if r > 1e-6 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("no positive rewards")
	}
	// Usage evens out: peak-to-trough shrinks vs TIP (paper: 200→119 MBps).
	tipRange := rangeOf(sm.totals)
	tdpRange := rangeOf(pr.Usage)
	if tdpRange >= tipRange {
		t.Errorf("TDP peak-to-trough %v not below TIP %v", tdpRange, tipRange)
	}
}

func TestStaticSolversAgree(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	h, err := sm.SolveWith(SolverHomotopy)
	if err != nil {
		t.Fatalf("homotopy: %v", err)
	}
	c, err := sm.SolveWith(SolverCoordinate)
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	s, err := sm.SolveWith(SolverSubgradient)
	if err != nil {
		t.Fatalf("subgradient: %v", err)
	}
	lb, err := sm.SolveWith(SolverLBFGS)
	if err != nil {
		t.Fatalf("lbfgs: %v", err)
	}
	if math.Abs(h.Cost-lb.Cost) > 1e-3*(1+h.Cost) {
		t.Errorf("homotopy cost %v vs lbfgs %v", h.Cost, lb.Cost)
	}
	// All three land near the same optimal cost on a convex problem.
	// Coordinate descent may stall a few percent high at kinks of the
	// coupled non-smooth term (documented on SolverCoordinate), and
	// subgradient converges slowly, so both get loose tolerances.
	if c.Cost < h.Cost-1e-6 {
		t.Errorf("coordinate cost %v beat homotopy %v: homotopy not optimal", c.Cost, h.Cost)
	}
	if math.Abs(h.Cost-c.Cost) > 5e-2*(1+h.Cost) {
		t.Errorf("homotopy cost %v vs coordinate %v", h.Cost, c.Cost)
	}
	if math.Abs(h.Cost-s.Cost) > 2e-2*(1+h.Cost) {
		t.Errorf("homotopy cost %v vs subgradient %v", h.Cost, s.Cost)
	}
}

func TestStaticSolveWithUnknownSolver(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	if _, err := sm.SolveWith(Solver(99)); !errors.Is(err, ErrBadScenario) {
		t.Errorf("err = %v, want ErrBadScenario", err)
	}
}

func TestStaticSolveForPeriod(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	pr, err := sm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Re-optimizing any single coordinate of the global optimum must not
	// improve the cost (first-order optimality).
	for _, period := range []int{0, 5, 11} {
		r, cost, err := sm.SolveForPeriod(pr.Rewards, period)
		if err != nil {
			t.Fatalf("SolveForPeriod(%d): %v", period, err)
		}
		if cost < pr.Cost-1e-4 {
			t.Errorf("period %d: 1-D reopt improved cost %v → %v (reward %v vs %v)",
				period+1, pr.Cost, cost, pr.Rewards[period], r)
		}
	}
	if _, _, err := sm.SolveForPeriod(pr.Rewards, 99); !errors.Is(err, ErrBadScenario) {
		t.Errorf("out-of-range period: err = %v, want ErrBadScenario", err)
	}
}

func TestStaticRewardsTrackDemand(t *testing.T) {
	// Fig. 4: "larger rewards roughly correlate with higher traffic" — the
	// reward for deferring *to* under-capacity valleys near peaks is
	// positive, while deep under-capacity periods with no nearby peaks get
	// little. Check the aggregate correlation between reward and the
	// demand of the preceding periods is not perverse: rewards must be
	// mostly concentrated in periods that are under capacity under TIP.
	sm, err := NewStaticModel(paper48())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	pr, err := sm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var rewardUnder, rewardOver float64
	for i, r := range pr.Rewards {
		if sm.totals[i] < sm.scn.Capacity[i] {
			rewardUnder += r
		} else {
			rewardOver += r
		}
	}
	if rewardUnder <= rewardOver {
		t.Errorf("rewards concentrate on over-capacity periods (under %v, over %v)",
			rewardUnder, rewardOver)
	}
}

// TestUsageByTypeConsistency: the per-class breakdown must sum to the
// aggregate usage and conserve each class's total demand.
func TestUsageByTypeConsistency(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * sm.MaxReward()
		}
		byType := sm.UsageByType(p)
		total := sm.UsageAt(p)
		for i := range total {
			var s float64
			for _, v := range byType[i] {
				s += v
			}
			if math.Abs(s-total[i]) > 1e-9 {
				t.Fatalf("period %d: Σ_j x_ij = %v, x_i = %v", i+1, s, total[i])
			}
		}
		// Per-class conservation.
		for j := range sm.scn.Betas {
			var got, want float64
			for i := 0; i < 12; i++ {
				got += byType[i][j]
				want += sm.scn.Demand[i][j]
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("class %d: Σ_i x_ij = %v, demand %v", j, got, want)
			}
		}
	}
}

// TestProfitCostEquivalence verifies Prop. 2: profit plus cost is a
// constant independent of the rewards, so profit maximization and cost
// minimization pick the same prices.
func TestProfitCostEquivalence(t *testing.T) {
	sm, err := NewStaticModel(paper12())
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	const usagePrice, opCost = 2.0, 0.3
	rng := rand.New(rand.NewSource(99))
	base := sm.ProfitAt(make([]float64, 12), usagePrice, opCost) + sm.CostAt(make([]float64, 12))
	for trial := 0; trial < 25; trial++ {
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * sm.MaxReward()
		}
		got := sm.ProfitAt(p, usagePrice, opCost) + sm.CostAt(p)
		if math.Abs(got-base) > 1e-6*(1+math.Abs(base)) {
			t.Fatalf("π + C = %v, want constant %v (Prop. 2 violated)", got, base)
		}
	}
	// Consequently the optimal rewards maximize profit among candidates.
	pr, err := sm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	bestProfit := sm.ProfitAt(pr.Rewards, usagePrice, opCost)
	for trial := 0; trial < 25; trial++ {
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * sm.MaxReward()
		}
		if sm.ProfitAt(p, usagePrice, opCost) > bestProfit+1e-6 {
			t.Fatalf("random rewards beat the optimum's profit")
		}
	}
}

func TestPricingSavingsZeroTIP(t *testing.T) {
	p := &Pricing{Cost: 5, TIPCost: 0}
	if s := p.Savings(); s != 0 {
		t.Errorf("Savings with zero TIP cost = %v, want 0", s)
	}
}

func rangeOf(x []float64) float64 {
	mx, mn := x[0], x[0]
	for _, v := range x {
		mx = math.Max(mx, v)
		mn = math.Min(mn, v)
	}
	return mx - mn
}
