package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// FixedDurationModel is Appendix G's variant for sessions that stay in the
// network a fixed amount of time and then leave (e.g. streaming video):
// within each period the session count follows Ṅ = ν − d·N, so sessions
// depart in proportion to how many are active, and congestion shows up as
// quality degradation on the concurrent load rather than unfinished work.
//
// Discretizing one period with constant post-deferral arrival rate ν_i and
// departure rate d_i gives the exact linear-ODE step
//
//	N_i(end) = N_i(start)·e^{−d_i} + (ν_i/d_i)·(1 − e^{−d_i}),
//
// with N_i(start) = N_{i−1}(end) + deferred-in sessions (eq. 38). The cost
// per period is p_i·In_i + f(b·N_i(end) − A_i): the reward outlay plus the
// congestion cost of the concurrent volume exceeding capacity.
//
// Unlike the fixed-size model the recursion is smooth (no max kink), so
// only the piecewise-linear f needs smoothing during the solve.
type FixedDurationModel struct {
	scn    *Scenario
	totals []float64
	inW    []float64
	outW   [][]float64
	n, m   int

	// DepartRate is d_i per period (same for all periods); 1/DepartRate is
	// the mean session duration in periods. Must be > 0.
	DepartRate float64
	// SessionSize is b, the bandwidth of one session in 10 MBps; demand
	// figures are divided by it to obtain session counts. Must be > 0.
	SessionSize float64
	// StartSessions is N at the start of period 1.
	StartSessions float64
}

// NewFixedDurationModel builds the model with the given departure rate.
func NewFixedDurationModel(scn *Scenario, departRate, sessionSize float64) (*FixedDurationModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if departRate <= 0 || math.IsNaN(departRate) {
		return nil, fmt.Errorf("departure rate %v: %w", departRate, ErrBadScenario)
	}
	if sessionSize <= 0 || math.IsNaN(sessionSize) {
		return nil, fmt.Errorf("session size %v: %w", sessionSize, ErrBadScenario)
	}
	n, m := scn.Periods, len(scn.Betas)
	p := scn.NormReward()
	fm := &FixedDurationModel{
		scn:         scn,
		totals:      scn.TotalDemand(),
		n:           n,
		m:           m,
		DepartRate:  departRate,
		SessionSize: sessionSize,
	}
	wfs := make([]waiting.UniformArrival, m)
	for j, beta := range scn.Betas {
		w, err := waiting.NewUniformArrival(beta, n, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		wfs[j] = w
	}
	fm.outW = make([][]float64, n)
	for i := 0; i < n; i++ {
		fm.outW[i] = make([]float64, n)
		for dt := 1; dt <= n-1; dt++ {
			if scn.NoWrap && i+dt >= n {
				continue // deferral would cross the day boundary
			}
			var s float64
			for j, d := range scn.Demand[i] {
				if d != 0 {
					s += d * wfs[j].DerivP(1, dt)
				}
			}
			fm.outW[i][dt] = s
		}
	}
	fm.inW = make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for dt := 1; dt <= n-1; dt++ {
			k := i - dt
			if k < 0 {
				k += n
			}
			s += fm.outW[k][dt]
		}
		fm.inW[i] = s
	}
	return fm, nil
}

// arrivals mirrors DynamicModel.arrivals: post-deferral volume per period.
func (fm *FixedDurationModel) arrivals(p []float64) (arr, in []float64) {
	n := fm.n
	arr = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		if pi := p[i]; pi > 0 {
			in[i] = pi * fm.inW[i]
		}
	}
	for i := 0; i < n; i++ {
		var out float64
		row := fm.outW[i]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		arr[i] = fm.totals[i] - out + in[i]
	}
	return arr, in
}

// SessionCounts returns end-of-period session counts N_i under rewards p.
func (fm *FixedDurationModel) SessionCounts(p []float64) []float64 {
	arr, _ := fm.arrivals(p)
	out := make([]float64, fm.n)
	decay := math.Exp(-fm.DepartRate)
	north := fm.StartSessions
	for i := 0; i < fm.n; i++ {
		nu := arr[i] / fm.SessionSize // arrivals in sessions/period
		north = north*decay + (nu/fm.DepartRate)*(1-decay)
		out[i] = north
	}
	return out
}

// CostAt evaluates the exact objective (36).
func (fm *FixedDurationModel) CostAt(p []float64) float64 {
	return fm.costSmoothed(p, 0)
}

// TIPCost returns the no-reward cost.
func (fm *FixedDurationModel) TIPCost() float64 {
	return fm.CostAt(make([]float64, fm.n))
}

func (fm *FixedDurationModel) costSmoothed(p []float64, mu float64) float64 {
	arr, in := fm.arrivals(p)
	decay := math.Exp(-fm.DepartRate)
	north := fm.StartSessions
	var c float64
	for i := 0; i < fm.n; i++ {
		nu := arr[i] / fm.SessionSize
		north = north*decay + (nu/fm.DepartRate)*(1-decay)
		c += p[i]*in[i] + fm.scn.Cost.Smooth(fm.SessionSize*north-fm.scn.Capacity[i], mu)
	}
	return c
}

// Solve minimizes the fixed-duration cost with the homotopy solver and
// numeric gradients (the recursion itself is smooth; only f is smoothed).
func (fm *FixedDurationModel) Solve() (*Pricing, error) {
	bounds := optimize.UniformBounds(fm.n, 0, math.Min(fm.scn.Cost.MaxSlope(), fm.scn.NormReward()))
	x0 := make([]float64, fm.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective {
			return optimize.FuncObjective{Fn: func(p []float64) float64 {
				return fm.costSmoothed(p, mu)
			}}
		},
		fm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		optimize.WithMaxIterations(800), optimize.WithTolerance(1e-7),
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("fixed-duration solve: %w", err)
	}
	p := res.X
	_, in := fm.arrivals(p)
	var outlay float64
	for i := 0; i < fm.n; i++ {
		outlay += p[i] * in[i]
	}
	return &Pricing{
		Rewards:      p,
		Usage:        fm.SessionCounts(p),
		Cost:         fm.CostAt(p),
		TIPCost:      fm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}
