package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// FixedDurationModel is Appendix G's variant for sessions that stay in the
// network a fixed amount of time and then leave (e.g. streaming video):
// within each period the session count follows Ṅ = ν − d·N, so sessions
// depart in proportion to how many are active, and congestion shows up as
// quality degradation on the concurrent load rather than unfinished work.
//
// Discretizing one period with constant post-deferral arrival rate ν_i and
// departure rate d_i gives the exact linear-ODE step
//
//	N_i(end) = N_i(start)·e^{−d_i} + (ν_i/d_i)·(1 − e^{−d_i}),
//
// with N_i(start) = N_{i−1}(end) + deferred-in sessions (eq. 38). The cost
// per period is p_i·In_i + f(b·N_i(end) − A_i): the reward outlay plus the
// congestion cost of the concurrent volume exceeding capacity.
//
// Unlike the fixed-size model the recursion is smooth (no max kink), so
// only the piecewise-linear f needs smoothing during the solve. The
// linearity of the recursion also yields an exact adjoint gradient, so the
// solve no longer falls back to numeric differentiation.
type FixedDurationModel struct {
	scn    *Scenario
	totals []float64
	kd     *deferKernel
	ws     wsPool
	n, m   int

	// DepartRate is d_i per period (same for all periods); 1/DepartRate is
	// the mean session duration in periods. Must be > 0.
	DepartRate float64
	// SessionSize is b, the bandwidth of one session in 10 MBps; demand
	// figures are divided by it to obtain session counts. Must be > 0.
	SessionSize float64
	// StartSessions is N at the start of period 1.
	StartSessions float64
}

// NewFixedDurationModel builds the model with the given departure rate.
func NewFixedDurationModel(scn *Scenario, departRate, sessionSize float64) (*FixedDurationModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if departRate <= 0 || math.IsNaN(departRate) {
		return nil, fmt.Errorf("departure rate %v: %w", departRate, ErrBadScenario)
	}
	if sessionSize <= 0 || math.IsNaN(sessionSize) {
		return nil, fmt.Errorf("session size %v: %w", sessionSize, ErrBadScenario)
	}
	n, m := scn.Periods, len(scn.Betas)
	p := scn.NormReward()
	fm := &FixedDurationModel{
		scn:         scn,
		totals:      scn.TotalDemand(),
		n:           n,
		m:           m,
		DepartRate:  departRate,
		SessionSize: sessionSize,
	}
	wfs := make([]waiting.UniformArrival, m)
	for j, beta := range scn.Betas {
		w, err := waiting.NewUniformArrival(beta, n, p)
		if err != nil {
			return nil, fmt.Errorf("type %d: %w", j, err)
		}
		wfs[j] = w
	}
	fm.kd = newDeferKernel(funcsOf(wfs), scn.Demand, n, scn.NoWrap)
	fm.ws.init(n)
	return fm, nil
}

// SessionCounts returns end-of-period session counts N_i under rewards p.
func (fm *FixedDurationModel) SessionCounts(p []float64) []float64 {
	w := fm.ws.get()
	defer fm.ws.put(w)
	fm.kd.arrivalsInto(p, fm.totals, w.x, w.in, w.p2)
	out := make([]float64, fm.n)
	decay := math.Exp(-fm.DepartRate)
	north := fm.StartSessions
	for i := 0; i < fm.n; i++ {
		nu := w.x[i] / fm.SessionSize // arrivals in sessions/period
		north = north*decay + (nu/fm.DepartRate)*(1-decay)
		out[i] = north
	}
	return out
}

// CostAt evaluates the exact objective (36).
func (fm *FixedDurationModel) CostAt(p []float64) float64 {
	return fm.costSmoothed(p, 0)
}

// TIPCost returns the no-reward cost.
func (fm *FixedDurationModel) TIPCost() float64 {
	w := fm.ws.get()
	zero := w.pwork
	for i := range zero {
		zero[i] = 0
	}
	c := fm.costSmoothed(zero, 0)
	fm.ws.put(w)
	return c
}

func (fm *FixedDurationModel) costSmoothed(p []float64, mu float64) float64 {
	w := fm.ws.get()
	defer fm.ws.put(w)
	fm.kd.arrivalsInto(p, fm.totals, w.x, w.in, w.p2)
	decay := math.Exp(-fm.DepartRate)
	north := fm.StartSessions
	var c float64
	for i := 0; i < fm.n; i++ {
		nu := w.x[i] / fm.SessionSize
		north = north*decay + (nu/fm.DepartRate)*(1-decay)
		c += p[i]*w.in[i] + fm.scn.Cost.Smooth(fm.SessionSize*north-fm.scn.Capacity[i], mu)
	}
	return c
}

// fixedDurationObjective is the smoothed cost with an exact adjoint
// gradient: the session-count recursion is linear in the arrivals, so the
// adjoint on N accumulates backward in O(n) —
//
//	adN_i = b·f'(b·N_i − A_i) + e^{−d}·adN_{i+1},   ∂C/∂arr_i = adN_i·(1−e^{−d})/(d·b)
//
// — and scatters to reward space through the shared kernel gather. It
// implements optimize.ValueGrader so line searches fuse the value and
// gradient passes over one arrival computation.
type fixedDurationObjective struct {
	fm *FixedDurationModel
	mu float64
}

var _ optimize.ValueGrader = fixedDurationObjective{}

// Value implements optimize.Objective.
func (o fixedDurationObjective) Value(p []float64) float64 { return o.fm.costSmoothed(p, o.mu) }

// Grad implements optimize.Objective.
func (o fixedDurationObjective) Grad(p, grad []float64) {
	o.valueGrad(p, grad, false)
}

// ValueGrad implements optimize.ValueGrader.
func (o fixedDurationObjective) ValueGrad(p, grad []float64) float64 {
	return o.valueGrad(p, grad, true)
}

func (o fixedDurationObjective) valueGrad(p, grad []float64, needValue bool) float64 {
	fm := o.fm
	n := fm.n
	w := fm.ws.get()
	defer fm.ws.put(w)
	fm.kd.arrivalsInto(p, fm.totals, w.x, w.in, w.p2)
	decay := math.Exp(-fm.DepartRate)
	gain := (1 - decay) / (fm.DepartRate * fm.SessionSize) // ∂N_i/∂arr_i
	north := fm.StartSessions
	var c float64
	for i := 0; i < n; i++ {
		// Same association as costSmoothed so the fused value matches it
		// bit for bit; gain is only the adjoint's sensitivity.
		nu := w.x[i] / fm.SessionSize
		north = north*decay + (nu/fm.DepartRate)*(1-decay)
		load := fm.SessionSize*north - fm.scn.Capacity[i]
		if needValue {
			v, fp := fm.scn.Cost.SmoothBoth(load, o.mu)
			c += p[i]*w.in[i] + v
			w.fp[i] = fp
		} else {
			w.fp[i] = fm.scn.Cost.SmoothDeriv(load, o.mu)
		}
	}
	adN := 0.0
	for i := n - 1; i >= 0; i-- {
		adN = fm.SessionSize*w.fp[i] + decay*adN
		lam := adN * gain
		w.lam2[i] = lam
		w.lam2[n+i] = lam
	}
	fm.kd.gradGather(p, w.lam2, grad)
	return c
}

// Solve minimizes the fixed-duration cost with the homotopy solver and the
// exact adjoint gradient (the recursion itself is smooth; only f is
// smoothed). Options are forwarded to the homotopy driver.
func (fm *FixedDurationModel) Solve(opts ...optimize.Option) (*Pricing, error) {
	bounds := optimize.UniformBounds(fm.n, 0, math.Min(fm.scn.Cost.MaxSlope(), fm.scn.NormReward()))
	x0 := make([]float64, fm.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective {
			return fixedDurationObjective{fm: fm, mu: mu}
		},
		fm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		append([]optimize.Option{
			optimize.WithMaxIterations(800), optimize.WithTolerance(1e-7),
		}, opts...)...,
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("fixed-duration solve: %w", err)
	}
	p := res.X
	w := fm.ws.get()
	fm.kd.arrivalsInto(p, fm.totals, w.x, w.in, w.p2)
	var outlay float64
	for i := 0; i < fm.n; i++ {
		outlay += p[i] * w.in[i]
	}
	fm.ws.put(w)
	return &Pricing{
		Rewards:      p,
		Usage:        fm.SessionCounts(p),
		Cost:         res.F,
		TIPCost:      fm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}
