package core

import (
	"fmt"

	"tdp/internal/optimize"
)

// periodModel is the slice of StaticModel/DynamicModel the online
// algorithm needs: full solve for initialization, incremental demand
// updates, and warm single-period re-optimization as periods elapse.
type periodModel interface {
	Solve(opts ...optimize.Option) (*Pricing, error)
	SolveForPeriodWarm(p []float64, period int, prev float64) (PeriodSolve, error)
	SolveForPeriodCold(p []float64, period int) (PeriodSolve, error)
	SetDemandRow(i int, row []float64) error
	CostAt(p []float64) float64
}

// OnlineConfig tunes the online price determination algorithm.
type OnlineConfig struct {
	// UseDynamic selects the offline dynamic model (carry-over) instead of
	// the static model as the underlying optimizer.
	UseDynamic bool
	// Alpha is the exponential-moving-average weight for folding observed
	// arrivals into the demand estimate: est ← (1−α)·est + α·obs.
	// The default 1 replaces the estimate outright, as in §V-B where the
	// ISP adopts the measured 200 MBps for period 1.
	Alpha float64
	// Cold disables warm-starting the per-period solves from the current
	// reward; each re-optimization then brackets the full [0, MaxReward]
	// interval. It exists for the warm-vs-cold comparison tests and
	// benchmarks.
	Cold bool
}

// OnlineStats accumulates the work spent on per-period re-optimizations —
// the quantities the TUBE observability layer publishes to compare warm
// and cold operation.
type OnlineStats struct {
	// PeriodSolves counts completed Advance re-optimizations.
	PeriodSolves int
	// WarmSolves counts the solves settled inside the warm bracket
	// (always 0 when Cold is set or on bracket-edge fallbacks).
	WarmSolves int
	// Evals is the cumulative number of one-dimensional cost evaluations.
	Evals int
}

// OnlineOptimizer implements §III-B's online price determination
// algorithm: start from the offline optimum, then after each elapsed
// period fold the observed arrivals into the demand estimate and
// re-optimize the reward for the same period one day ahead, holding the
// other n−1 rewards fixed.
//
// The demand fold updates the underlying model's kernel tables in place
// (O(n·m)) instead of rebuilding the model, and the per-period solve is
// warm-started from the reward currently published for the slot.
type OnlineOptimizer struct {
	scn     *Scenario
	cfg     OnlineConfig
	model   periodModel
	rewards []float64
	elapsed int
	stats   OnlineStats
}

// NewOnlineOptimizer initializes the rolling reward schedule with a full
// offline solve of the scenario (step 1 of the algorithm). The scenario is
// deep-copied; observations mutate only the optimizer's internal estimate.
func NewOnlineOptimizer(scn *Scenario, cfg OnlineConfig) (*OnlineOptimizer, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("alpha %v outside [0, 1]: %w", cfg.Alpha, ErrBadScenario)
	}
	cp := scn.Clone()
	o := &OnlineOptimizer{scn: cp, cfg: cfg}
	var err error
	if cfg.UseDynamic {
		o.model, err = NewDynamicModel(cp)
	} else {
		o.model, err = NewStaticModel(cp)
	}
	if err != nil {
		return nil, err
	}
	pr, err := o.model.Solve()
	if err != nil {
		return nil, fmt.Errorf("online init: %w", err)
	}
	o.rewards = pr.Rewards
	return o, nil
}

// Rewards returns a copy of the current rolling reward schedule, indexed
// by period (mod n).
func (o *OnlineOptimizer) Rewards() []float64 {
	return append([]float64(nil), o.rewards...)
}

// Elapsed returns the number of completed periods.
func (o *OnlineOptimizer) Elapsed() int { return o.elapsed }

// Stats returns the accumulated re-optimization work counters.
func (o *OnlineOptimizer) Stats() OnlineStats { return o.stats }

// CurrentReward returns the published reward for the period now beginning.
func (o *OnlineOptimizer) CurrentReward() float64 {
	return o.rewards[o.elapsed%o.scn.Periods]
}

// DemandEstimate returns a copy of the current per-period, per-type
// demand estimate.
func (o *OnlineOptimizer) DemandEstimate() [][]float64 {
	out := make([][]float64, len(o.scn.Demand))
	for i, row := range o.scn.Demand {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Advance records the observed per-type arrivals for the period that just
// ended, folds them into the demand estimate, and re-optimizes the reward
// for that period's slot one day ahead (steps 2–3 of the algorithm). It
// returns the solve report (reward, exact cost, evaluation count, and
// whether the warm bracket sufficed).
func (o *OnlineOptimizer) Advance(observed []float64) (PeriodSolve, error) {
	n := o.scn.Periods
	idx := o.elapsed % n
	if len(observed) != len(o.scn.Betas) {
		return PeriodSolve{}, fmt.Errorf("observed %d types, want %d: %w", len(observed), len(o.scn.Betas), ErrBadScenario)
	}
	for j, v := range observed {
		if v < 0 {
			return PeriodSolve{}, fmt.Errorf("negative observation for type %d: %w", j, ErrBadScenario)
		}
		o.scn.Demand[idx][j] = (1-o.cfg.Alpha)*o.scn.Demand[idx][j] + o.cfg.Alpha*v
	}
	if err := o.model.SetDemandRow(idx, o.scn.Demand[idx]); err != nil {
		return PeriodSolve{}, err
	}
	var (
		ps  PeriodSolve
		err error
	)
	if o.cfg.Cold {
		ps, err = o.model.SolveForPeriodCold(o.rewards, idx)
	} else {
		ps, err = o.model.SolveForPeriodWarm(o.rewards, idx, o.rewards[idx])
	}
	if err != nil {
		return PeriodSolve{}, err
	}
	o.rewards[idx] = ps.Reward
	o.elapsed++
	o.stats.PeriodSolves++
	o.stats.Evals += ps.Evals
	if ps.Warm {
		o.stats.WarmSolves++
	}
	return ps, nil
}

// CostAt evaluates the current model's daily cost for a reward schedule —
// used to compare adjusted vs nominal rewards as in §V-B.
func (o *OnlineOptimizer) CostAt(p []float64) float64 {
	return o.model.CostAt(p)
}

// ColdPeriodSolve runs a full-bracket single-period solve against the
// current model and schedule without mutating any state. Deployments use
// it once at startup to calibrate how much work a cold re-optimization
// costs, giving the warm-solve metrics an evals-saved baseline.
func (o *OnlineOptimizer) ColdPeriodSolve(period int) (PeriodSolve, error) {
	return o.model.SolveForPeriodCold(o.rewards, period)
}
