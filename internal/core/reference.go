package core

import (
	"math"

	"tdp/internal/optimize"
)

// Reference implementations of the evaluation hot paths, preserving the
// pre-flattening loop structure (per-lag wrap arithmetic, positivity
// branches, fresh slices per call). They exist to pin the optimized
// kernel-table paths: the equivalence and fuzz tests check fast ≡ reference
// to ≤1e-12 on costs, gradients, and usage, and the solver benchmarks use
// ReferenceObjective for an honest before/after comparison on the same
// model. They are not used on any production path.

// referenceUsage is the original StaticModel.usage: allocating, with
// wrap arithmetic and positivity branches in the inner loop.
func (sm *StaticModel) referenceUsage(p []float64) (x, in []float64) {
	n := sm.n
	x = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		pi := math.Max(p[i], 0)
		in[i] = pi * sm.kd.inW[i]
	}
	for i := 0; i < n; i++ {
		var out float64
		row := sm.kd.outW[i*n : i*n+n]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		x[i] = sm.totals[i] - out + in[i]
	}
	return x, in
}

// ReferenceCostAt is CostAt over the reference usage path.
func (sm *StaticModel) ReferenceCostAt(p []float64) float64 {
	x, in := sm.referenceUsage(p)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i]*in[i] + sm.scn.Cost.Value(x[i]-sm.scn.Capacity[i])
	}
	return c
}

// ReferenceUsageAt is UsageAt over the reference usage path.
func (sm *StaticModel) ReferenceUsageAt(p []float64) []float64 {
	x, _ := sm.referenceUsage(p)
	return x
}

// ReferenceSolveForPeriod is the original SolveForPeriod: a Brent search
// whose every evaluation runs the full O(n²) cost.
func (sm *StaticModel) ReferenceSolveForPeriod(p []float64, period int) (float64, float64, error) {
	if err := checkPeriod(period, sm.n); err != nil {
		return 0, 0, err
	}
	work := append([]float64(nil), p...)
	best, fbest := optimize.Brent(func(t float64) float64 {
		work[period] = t
		return sm.ReferenceCostAt(work)
	}, 0, sm.MaxReward(), 1e-10)
	return best, fbest, nil
}

// ReferenceObjective is the original smoothed objective: value and
// gradient recompute the usage independently, allocate their scratch per
// call, and gather the gradient with per-lag wrap arithmetic. It does not
// implement optimize.ValueGrader, so solvers take their unfused path.
func (sm *StaticModel) ReferenceObjective(mu float64) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(p []float64) float64 {
			x, in := sm.referenceUsage(p)
			var c float64
			for i := 0; i < sm.n; i++ {
				c += p[i]*in[i] + sm.scn.Cost.Smooth(x[i]-sm.scn.Capacity[i], mu)
			}
			return c
		},
		GradFn: func(p, grad []float64) {
			n := sm.n
			x, _ := sm.referenceUsage(p)
			fp := make([]float64, n) // f'(x_i − A_i)
			for i := 0; i < n; i++ {
				fp[i] = sm.scn.Cost.SmoothDeriv(x[i]-sm.scn.Capacity[i], mu)
			}
			for r := 0; r < n; r++ {
				// d(p_r·In_r)/dp_r = 2p_r·inW[r]; dx_r/dp_r = inW[r].
				g := (2*p[r] + fp[r]) * sm.kd.inW[r]
				for dt := 1; dt <= n-1; dt++ {
					i := r - dt
					if i < 0 {
						i += n
					}
					if fp[i] != 0 {
						g -= fp[i] * sm.kd.outW[i*n+dt]
					}
				}
				grad[r] = g
			}
		},
	}
}

// referenceArrivals is the original DynamicModel.arrivals.
func (dm *DynamicModel) referenceArrivals(p []float64) (arr, in []float64) {
	n := dm.n
	arr = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		if pi := p[i]; pi > 0 {
			in[i] = pi * dm.kd.inW[i]
		}
	}
	for i := 0; i < n; i++ {
		var out float64
		row := dm.kd.outW[i*n : i*n+n]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		arr[i] = dm.totals[i] - out + in[i]
	}
	return arr, in
}

// ReferenceCostAt is the dynamic CostAt over the reference arrival path.
func (dm *DynamicModel) ReferenceCostAt(p []float64) float64 {
	arr, in := dm.referenceArrivals(p)
	var c float64
	carry := dm.StartBacklog
	for i := 0; i < dm.n; i++ {
		z := carry + arr[i] - dm.scn.Capacity[i]
		c += p[i]*in[i] + dm.scn.Cost.Smooth(z, 0)
		carry = optimize.SmoothMax(z, 0)
	}
	return c
}

// ReferenceObjective is the original smoothed dynamic objective with the
// allocating adjoint gradient. It does not implement optimize.ValueGrader.
func (dm *DynamicModel) ReferenceObjective(mu float64) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(p []float64) float64 {
			arr, in := dm.referenceArrivals(p)
			var c float64
			carry := dm.StartBacklog
			for i := 0; i < dm.n; i++ {
				z := carry + arr[i] - dm.scn.Capacity[i]
				c += p[i]*in[i] + dm.scn.Cost.Smooth(z, mu)
				carry = optimize.SmoothMax(z, mu)
			}
			return c
		},
		GradFn: func(p, grad []float64) {
			n := dm.n
			arr, _ := dm.referenceArrivals(p)
			z := make([]float64, n)
			carry := dm.StartBacklog
			for i := 0; i < n; i++ {
				z[i] = carry + arr[i] - dm.scn.Capacity[i]
				carry = optimize.SmoothMax(z[i], mu)
			}
			// Adjoint sweep: λ_i = ∂C/∂z_i = f'(z_i) + λ_{i+1}·S'(z_i).
			lambda := make([]float64, n)
			for i := n - 1; i >= 0; i-- {
				lambda[i] = dm.scn.Cost.SmoothDeriv(z[i], mu)
				if i < n-1 {
					lambda[i] += lambda[i+1] * optimize.SmoothMaxDeriv(z[i], mu)
				}
			}
			// grad[r] = 2p_r·inW[r] + λ_r·inW[r] − Σ_{i≠r} λ_i·outW[i][t(i→r)].
			for r := 0; r < n; r++ {
				g := (2*p[r] + lambda[r]) * dm.kd.inW[r]
				for dt := 1; dt <= n-1; dt++ {
					i := r - dt
					if i < 0 {
						i += n
					}
					if lambda[i] != 0 {
						g -= lambda[i] * dm.kd.outW[i*n+dt]
					}
				}
				grad[r] = g
			}
		},
	}
}
