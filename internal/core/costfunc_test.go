package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinearCost(t *testing.T) {
	f := LinearCost(3)
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tests := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {1, 3}, {2.5, 7.5},
	}
	for _, tt := range tests {
		if got := f.Value(tt.x); got != tt.want {
			t.Errorf("Value(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if f.MaxSlope() != 3 {
		t.Errorf("MaxSlope = %v, want 3", f.MaxSlope())
	}
	if f.Deriv(1) != 3 || f.Deriv(-1) != 0 {
		t.Error("Deriv wrong")
	}
}

func TestCostFuncValidate(t *testing.T) {
	bad := []CostFunc{
		{},
		{Breaks: []float64{0}, Slopes: []float64{-1}},
		{Breaks: []float64{0, 1}, Slopes: []float64{1}},
		{Breaks: []float64{2, 1}, Slopes: []float64{1, 1}},
		{Breaks: []float64{0}, Slopes: []float64{0}},
	}
	for i, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrBadScenario) {
			t.Errorf("case %d: err = %v, want ErrBadScenario", i, err)
		}
	}
}

func TestCostFuncPiecewise(t *testing.T) {
	// Two-tier congestion cost: slope 1 above 0, extra slope 2 above 10.
	f := CostFunc{Breaks: []float64{0, 10}, Slopes: []float64{1, 2}}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := f.Value(5); got != 5 {
		t.Errorf("Value(5) = %v, want 5", got)
	}
	if got := f.Value(12); got != 12+2*2 {
		t.Errorf("Value(12) = %v, want 16", got)
	}
	if got := f.Deriv(12); got != 3 {
		t.Errorf("Deriv(12) = %v, want 3", got)
	}
	if got := f.MaxSlope(); got != 3 {
		t.Errorf("MaxSlope = %v, want 3", got)
	}
}

func TestCostFuncScale(t *testing.T) {
	f := LinearCost(3).Scale(2)
	if got := f.Value(1); got != 6 {
		t.Errorf("scaled Value(1) = %v, want 6", got)
	}
	// Scaling must not alias the original.
	g := LinearCost(3)
	_ = g.Scale(10)
	if g.Value(1) != 3 {
		t.Error("Scale mutated receiver")
	}
}

// Property: the smoothed cost upper-bounds the exact cost and converges as
// μ→0, and SmoothDeriv matches finite differences.
func TestCostFuncSmoothProperty(t *testing.T) {
	f := CostFunc{Breaks: []float64{0, 5}, Slopes: []float64{2, 1}}
	check := func(xr int16) bool {
		x := float64(xr) / 100
		exact := f.Value(x)
		for _, mu := range []float64{0.5, 0.05} {
			s := f.Smooth(x, mu)
			if s < exact-1e-9 || s > exact+mu*math.Ln2*f.MaxSlope()+1e-9 {
				return false
			}
			const h = 1e-6
			num := (f.Smooth(x+h, mu) - f.Smooth(x-h, mu)) / (2 * h)
			if math.Abs(num-f.SmoothDeriv(x, mu)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCostFuncSmoothZeroMuIsExact(t *testing.T) {
	f := LinearCost(2)
	for _, x := range []float64{-3, 0, 4.2} {
		if f.Smooth(x, 0) != f.Value(x) {
			t.Errorf("Smooth(%v, 0) = %v, want %v", x, f.Smooth(x, 0), f.Value(x))
		}
	}
}
