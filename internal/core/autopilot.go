package core

import (
	"fmt"
	"math"
)

// This file implements the §VII extension: congestion-dependent pricing on
// short timescales (periods of ~30 s) with an "auto-pilot" agent on the
// user side — the mechanism behind the paper's "$5 a month" plan sketch.
// Users who let the autopilot wait for cheap slots are served almost
// entirely from otherwise-idle capacity.
//
// Semantics follow the paper's billing reading (§I-C: rewards move the
// baseline usage price): the published reward r_t is a discount for
// consuming in slot t, so the effective price is max(base − r_t, 0).
// Cheap slots are the *uncongested* ones — "users wait for time slots in
// which congestion conditions and prices are sufficiently low" (§VII).

// CongestionPricer sets the current-slot reward from real-time
// utilization instead of a day-ahead optimization: idle capacity raises
// the discount to attract deferrable traffic, congestion removes it. The
// controller is a clamped integrator, so the reward ratchets smoothly.
type CongestionPricer struct {
	// Target is the utilization setpoint in [0, 1] (e.g. the paper's 80%).
	Target float64
	// Gain converts utilization shortfall into reward units per update.
	Gain float64
	// MaxReward caps the published discount (at most the base price).
	MaxReward float64

	reward float64
}

// NewCongestionPricer validates and builds a pricer.
func NewCongestionPricer(target, gain, maxReward float64) (*CongestionPricer, error) {
	if target < 0 || target > 1 || math.IsNaN(target) {
		return nil, fmt.Errorf("target utilization %v: %w", target, ErrBadScenario)
	}
	if gain <= 0 || maxReward <= 0 {
		return nil, fmt.Errorf("gain %v, max reward %v: %w", gain, maxReward, ErrBadScenario)
	}
	return &CongestionPricer{Target: target, Gain: gain, MaxReward: maxReward}, nil
}

// Update folds a new utilization sample (load/capacity, may exceed 1)
// into the published reward and returns it: sustained idleness ratchets
// the discount up, sustained congestion removes it.
func (c *CongestionPricer) Update(utilization float64) float64 {
	c.reward += c.Gain * (c.Target - utilization)
	c.reward = math.Max(0, math.Min(c.reward, c.MaxReward))
	return c.reward
}

// Reward returns the currently published reward (discount).
func (c *CongestionPricer) Reward() float64 { return c.reward }

// AutopilotConfig is the user's standing instruction set (§VII): "a user
// need not be bothered once he or she specifies a basic configuration,
// e.g. the maximum monthly bill, which applications should never be
// deferred".
type AutopilotConfig struct {
	// SpendBudget is the maximum the user will pay per billing cycle in
	// $0.10 units (the "$5 a month" knob). Zero means unlimited.
	SpendBudget float64
	// NeverDefer lists session-type indices that must run immediately
	// (live video, calls) whatever the price.
	NeverDefer map[int]bool
	// PriceCeiling is the highest effective price at which deferrable
	// sessions run; above it the autopilot waits for a cheaper slot.
	// Zero means no ceiling.
	PriceCeiling float64
}

// Autopilot decides run-or-wait per session given the live effective
// price, tracking cumulative spend against the budget.
type Autopilot struct {
	cfg   AutopilotConfig
	spent float64
}

// NewAutopilot builds an autopilot with the given standing configuration.
func NewAutopilot(cfg AutopilotConfig) *Autopilot {
	return &Autopilot{cfg: cfg}
}

// Decision is the autopilot's verdict for one session.
type Decision int

// Autopilot verdicts.
const (
	// RunNow sends the session immediately at the current price.
	RunNow Decision = iota + 1
	// Defer waits for a cheaper slot.
	Defer
	// Blocked refuses to run the session now because doing so would
	// exceed the cycle's spend budget; it must wait for a slot cheap
	// enough to fit.
	Blocked
)

// Decide returns the verdict for a session of the given type and volume
// at the current effective price per volume unit.
func (a *Autopilot) Decide(sessionType int, volume, price float64) Decision {
	cost := volume * price
	overBudget := a.cfg.SpendBudget > 0 && a.spent+cost > a.cfg.SpendBudget
	if a.cfg.NeverDefer[sessionType] {
		// The user insists on immediacy — but a hard budget still blocks
		// when the plan has no headroom left.
		if overBudget {
			return Blocked
		}
		return RunNow
	}
	if overBudget {
		return Blocked
	}
	if a.cfg.PriceCeiling > 0 && price > a.cfg.PriceCeiling {
		return Defer
	}
	return RunNow
}

// RecordSpend accrues the user's spend after a session actually runs.
func (a *Autopilot) RecordSpend(amount float64) {
	if amount > 0 {
		a.spent += amount
	}
}

// Spent returns the cumulative recorded spend this cycle.
func (a *Autopilot) Spent() float64 { return a.spent }

// Remaining returns the budget headroom (Inf when unlimited).
func (a *Autopilot) Remaining() float64 {
	if a.cfg.SpendBudget <= 0 {
		return math.Inf(1)
	}
	return math.Max(a.cfg.SpendBudget-a.spent, 0)
}

// ResetCycle zeroes the spend at the start of a billing cycle.
func (a *Autopilot) ResetCycle() { a.spent = 0 }
