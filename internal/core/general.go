package core

import (
	"fmt"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// GeneralStaticModel is the §II static model for *arbitrary* waiting
// functions — anything increasing and concave in the reward (Prop. 3's
// full generality), e.g. waiting.Concave with exponent γ < 1, where
// StaticModel is specialized to the linear power-law family for speed.
//
// Evaluations are O(n²·m) with transcendental calls per term, so prefer
// StaticModel when the linear family suffices (it is ~100× faster on the
// 48-period day). Convexity — and hence global optimality of Solve —
// holds by Prop. 3 whenever every supplied Func is increasing and concave
// in p.
type GeneralStaticModel struct {
	scn    *Scenario
	wfs    []waiting.Func
	totals []float64
	n, m   int
}

// NewGeneralStaticModel builds the model with one waiting function per
// session type. The scenario's Betas are not used for the waiting
// behavior (the funcs carry it); they must still be structurally valid.
func NewGeneralStaticModel(scn *Scenario, wfs []waiting.Func) (*GeneralStaticModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if len(wfs) != len(scn.Betas) {
		return nil, fmt.Errorf("%d waiting funcs for %d types: %w", len(wfs), len(scn.Betas), ErrBadScenario)
	}
	for j, w := range wfs {
		if w == nil {
			return nil, fmt.Errorf("nil waiting func for type %d: %w", j, ErrBadScenario)
		}
	}
	return &GeneralStaticModel{
		scn:    scn,
		wfs:    append([]waiting.Func(nil), wfs...),
		totals: scn.TotalDemand(),
		n:      scn.Periods,
		m:      len(scn.Betas),
	}, nil
}

// MaxReward returns the reward box bound.
func (gm *GeneralStaticModel) MaxReward() float64 {
	if norm := gm.scn.NormReward(); norm < gm.scn.Cost.MaxSlope() {
		return norm
	}
	return gm.scn.Cost.MaxSlope()
}

// deferKernel returns Σ_j D[k][j]·w_j(p, dt) and its p-derivative.
func (gm *GeneralStaticModel) deferKernel(k int, p float64, dt int) (v, dv float64) {
	for j, d := range gm.scn.Demand[k] {
		if d == 0 {
			continue
		}
		v += d * gm.wfs[j].Value(p, dt)
		dv += d * gm.wfs[j].DerivP(p, dt)
	}
	return v, dv
}

// usage computes x and In for rewards p.
func (gm *GeneralStaticModel) usage(p []float64) (x, in []float64) {
	n := gm.n
	x = make([]float64, n)
	in = make([]float64, n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for dt := 1; dt <= n-1; dt++ {
			if gm.scn.NoWrap && i+dt >= n {
				continue
			}
			k := (i + dt) % n
			v, _ := gm.deferKernel(i, p[k], dt)
			out[i] += v
			in[k] += v
		}
	}
	for i := 0; i < n; i++ {
		x[i] = gm.totals[i] - out[i] + in[i]
	}
	return x, in
}

// UsageAt returns the TDP usage profile for rewards p.
func (gm *GeneralStaticModel) UsageAt(p []float64) []float64 {
	x, _ := gm.usage(p)
	return x
}

// CostAt evaluates the exact objective.
func (gm *GeneralStaticModel) CostAt(p []float64) float64 {
	x, in := gm.usage(p)
	var c float64
	for i := 0; i < gm.n; i++ {
		c += p[i]*in[i] + gm.scn.Cost.Value(x[i]-gm.scn.Capacity[i])
	}
	return c
}

// TIPCost returns the no-reward cost.
func (gm *GeneralStaticModel) TIPCost() float64 {
	return gm.CostAt(make([]float64, gm.n))
}

// smoothedObjective builds the softplus-smoothed cost with analytic
// gradient via the chain rule on the general waiting functions.
func (gm *GeneralStaticModel) smoothedObjective(mu float64) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(p []float64) float64 {
			x, in := gm.usage(p)
			var c float64
			for i := 0; i < gm.n; i++ {
				c += p[i]*in[i] + gm.scn.Cost.Smooth(x[i]-gm.scn.Capacity[i], mu)
			}
			return c
		},
		GradFn: func(p, grad []float64) {
			n := gm.n
			x, in := gm.usage(p)
			fp := make([]float64, n)
			for i := 0; i < n; i++ {
				fp[i] = gm.scn.Cost.SmoothDeriv(x[i]-gm.scn.Capacity[i], mu)
			}
			for r := 0; r < n; r++ {
				// d/dp_r [p_r·In_r] = In_r + p_r·In'_r; x_r gains In'_r,
				// x_i (i = r−dt) loses its outflow derivative.
				var dIn float64
				g := in[r]
				for dt := 1; dt <= n-1; dt++ {
					i := r - dt
					if i < 0 {
						i += n
					}
					if gm.scn.NoWrap && i+dt >= n {
						continue
					}
					_, dv := gm.deferKernel(i, p[r], dt)
					dIn += dv
					g -= fp[i] * dv
				}
				g += (p[r] + fp[r]) * dIn
				grad[r] = g
			}
		},
	}
}

// Solve minimizes the cost with the homotopy solver.
func (gm *GeneralStaticModel) Solve() (*Pricing, error) {
	bounds := optimize.UniformBounds(gm.n, 0, gm.MaxReward())
	x0 := make([]float64, gm.n)
	res, err := optimize.Homotopy(
		func(mu float64) optimize.Objective { return gm.smoothedObjective(mu) },
		gm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
		optimize.WithMaxIterations(2000), optimize.WithTolerance(1e-7),
	)
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("general static solve: %w", err)
	}
	p := res.X
	x, in := gm.usage(p)
	var outlay float64
	for i := 0; i < gm.n; i++ {
		outlay += p[i] * in[i]
	}
	return &Pricing{
		Rewards:      p,
		Usage:        x,
		Cost:         gm.CostAt(p),
		TIPCost:      gm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}, nil
}
