package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// linearFuncs builds the power-law family matching paper12's betas.
func linearFuncs(t *testing.T, scn *Scenario) []waiting.Func {
	t.Helper()
	out := make([]waiting.Func, len(scn.Betas))
	for j, beta := range scn.Betas {
		w, err := waiting.NewPowerLaw(beta, scn.Periods, scn.NormReward())
		if err != nil {
			t.Fatalf("NewPowerLaw: %v", err)
		}
		out[j] = w
	}
	return out
}

// concaveFuncs builds γ = 0.5 concave waiting functions.
func concaveFuncs(t *testing.T, scn *Scenario) []waiting.Func {
	t.Helper()
	out := make([]waiting.Func, len(scn.Betas))
	for j, beta := range scn.Betas {
		w, err := waiting.NewConcave(beta, 0.5, scn.Periods, scn.NormReward())
		if err != nil {
			t.Fatalf("NewConcave: %v", err)
		}
		out[j] = w
	}
	return out
}

func TestNewGeneralStaticModelValidation(t *testing.T) {
	scn := paper12()
	if _, err := NewGeneralStaticModel(scn, nil); !errors.Is(err, ErrBadScenario) {
		t.Errorf("no funcs: err = %v, want ErrBadScenario", err)
	}
	wfs := linearFuncs(t, scn)
	wfs[3] = nil
	if _, err := NewGeneralStaticModel(scn, wfs); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil func: err = %v, want ErrBadScenario", err)
	}
	bad := paper12()
	bad.Periods = 1
	if _, err := NewGeneralStaticModel(bad, linearFuncs(t, scn)); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestGeneralMatchesSpecializedOnLinearFamily: with the same power-law
// functions, the general model must agree with the kernel-table
// StaticModel on cost, usage, and gradient for arbitrary rewards.
func TestGeneralMatchesSpecializedOnLinearFamily(t *testing.T) {
	scn := paper12()
	gm, err := NewGeneralStaticModel(scn, linearFuncs(t, scn))
	if err != nil {
		t.Fatalf("NewGeneralStaticModel: %v", err)
	}
	sm, err := NewStaticModel(scn)
	if err != nil {
		t.Fatalf("NewStaticModel: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		p := make([]float64, 12)
		for i := range p {
			p[i] = rng.Float64() * sm.MaxReward()
		}
		if a, b := gm.CostAt(p), sm.CostAt(p); math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("cost mismatch: general %v, specialized %v", a, b)
		}
		xa, xb := gm.UsageAt(p), sm.UsageAt(p)
		for i := range xa {
			if math.Abs(xa[i]-xb[i]) > 1e-9 {
				t.Fatalf("usage mismatch at %d: %v vs %v", i, xa[i], xb[i])
			}
		}
	}
}

func TestGeneralAnalyticGradient(t *testing.T) {
	scn := paper12()
	gm, err := NewGeneralStaticModel(scn, concaveFuncs(t, scn))
	if err != nil {
		t.Fatalf("NewGeneralStaticModel: %v", err)
	}
	obj := gm.smoothedObjective(0.1)
	rng := rand.New(rand.NewSource(8))
	p := make([]float64, 12)
	for i := range p {
		p[i] = 0.1 + rng.Float64() // keep away from p=0 where γ<1 has ∞ slope
	}
	ana := make([]float64, 12)
	num := make([]float64, 12)
	obj.Grad(p, ana)
	optimize.NumGrad(obj.Value, p, num)
	for i := range ana {
		if math.Abs(ana[i]-num[i]) > 1e-3*(1+math.Abs(num[i])) {
			t.Errorf("grad[%d]: analytic %v, numeric %v", i, ana[i], num[i])
		}
	}
}

// TestGeneralConcaveSolve exercises Prop. 3's full generality: γ = 0.5
// concave waiting functions still give a convex problem; the solve must
// beat TIP and differ qualitatively from the linear family (diminishing
// returns favor spreading smaller rewards over more periods).
func TestGeneralConcaveSolve(t *testing.T) {
	scn := paper12()
	gm, err := NewGeneralStaticModel(scn, concaveFuncs(t, scn))
	if err != nil {
		t.Fatalf("NewGeneralStaticModel: %v", err)
	}
	pr, err := gm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost >= pr.TIPCost {
		t.Fatalf("concave TDP cost %v not below TIP %v", pr.Cost, pr.TIPCost)
	}
	// Convexity spot check along random segments.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 12)
		b := make([]float64, 12)
		mid := make([]float64, 12)
		for i := range a {
			a[i] = rng.Float64() * gm.MaxReward()
			b[i] = rng.Float64() * gm.MaxReward()
			mid[i] = (a[i] + b[i]) / 2
		}
		if gm.CostAt(mid) > (gm.CostAt(a)+gm.CostAt(b))/2+1e-9 {
			t.Fatal("cost not convex with concave waiting functions (Prop. 3)")
		}
	}
	// 1-D re-optimization cannot improve the optimum.
	work := append([]float64(nil), pr.Rewards...)
	for _, period := range []int{0, 4, 9} {
		_, c := optimize.Brent(func(x float64) float64 {
			work[period] = x
			defer func() { work[period] = pr.Rewards[period] }()
			return gm.CostAt(work)
		}, 0, gm.MaxReward(), 1e-9)
		if c < pr.Cost-1e-4 {
			t.Errorf("period %d: 1-D reopt improved %v → %v", period+1, pr.Cost, c)
		}
	}
}

// TestGeneralConcaveDiffersFromLinear confirms the concave exponent
// actually changes the optimum (the generality is not vacuous).
func TestGeneralConcaveDiffersFromLinear(t *testing.T) {
	scn := paper12()
	lin, err := NewGeneralStaticModel(scn, linearFuncs(t, scn))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewGeneralStaticModel(scn, concaveFuncs(t, scn))
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lin.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := conc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for i := range lp.Rewards {
		diff += math.Abs(lp.Rewards[i] - cp.Rewards[i])
	}
	if diff < 0.1 {
		t.Errorf("linear and concave optima nearly identical (Σ|Δp| = %v)", diff)
	}
}

// TestGeneralMixedFamilies solves with a heterogeneous mix of waiting
// families (power law, concave, exponential decay) — the "parametrized
// family is the ISP's choice" reading of §IV.
func TestGeneralMixedFamilies(t *testing.T) {
	scn := paper12()
	wfs := make([]waiting.Func, len(scn.Betas))
	for j, beta := range scn.Betas {
		var (
			w   waiting.Func
			err error
		)
		switch j % 3 {
		case 0:
			w, err = waiting.NewPowerLaw(beta, scn.Periods, scn.NormReward())
		case 1:
			w, err = waiting.NewConcave(beta, 0.7, scn.Periods, scn.NormReward())
		default:
			w, err = waiting.NewExpDecay(beta/2, scn.Periods, scn.NormReward())
		}
		if err != nil {
			t.Fatalf("type %d: %v", j, err)
		}
		wfs[j] = w
	}
	gm, err := NewGeneralStaticModel(scn, wfs)
	if err != nil {
		t.Fatalf("NewGeneralStaticModel: %v", err)
	}
	pr, err := gm.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if pr.Cost >= pr.TIPCost {
		t.Errorf("mixed-family TDP cost %v not below TIP %v", pr.Cost, pr.TIPCost)
	}
	// Conservation still holds across heterogeneous families.
	var sx, sX float64
	for i, xi := range pr.Usage {
		sx += xi
		sX += gm.totals[i]
	}
	if math.Abs(sx-sX) > 1e-6 {
		t.Errorf("Σx = %v, ΣX = %v", sx, sX)
	}
}

func TestGeneralNoWrap(t *testing.T) {
	scn := paper12()
	scn.NoWrap = true
	gm, err := NewGeneralStaticModel(scn, linearFuncs(t, scn))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewStaticModel(scn)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 12)
	for i := range p {
		p[i] = 0.5
	}
	if a, b := gm.CostAt(p), sm.CostAt(p); math.Abs(a-b) > 1e-9*(1+b) {
		t.Errorf("NoWrap cost mismatch: general %v, specialized %v", a, b)
	}
}
