package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// StaticModel is the §II static session model: sessions are fixed blobs of
// demand that may be deferred between periods according to waiting
// functions, with no carry-over of unfinished work. Under Prop. 3's
// conditions (satisfied by construction here) the cost is convex in the
// rewards, so Solve finds the global optimum.
//
// Because the paper's waiting family w_β(p,t) = C_β·p/(t+1)^β is linear in
// p, the model precomputes two kernel tables at construction:
//
//	inW[i]      = Σ_{k≠i} Σ_j D[k][j]·C_j/(t(k→i)+1)^{β_j}, so In_i = p_i·inW[i]
//	outW[i][dt] = Σ_j D[i][j]·C_j/(dt+1)^{β_j},             so Out_i = Σ_dt outW[i][dt]·p_{i+dt}
//
// making each cost or gradient evaluation O(n²) with no transcendental
// calls — this is the "choice of representation" §II argues keeps the
// optimization tractable in near real time.
type StaticModel struct {
	scn    *Scenario
	wfs    []waiting.PowerLaw
	totals []float64   // X_i
	kern   [][]float64 // kern[j][dt] = C_j·(dt+1)^{−β_j}, dt ∈ [1, n−1]
	inW    []float64
	outW   [][]float64
	n, m   int
}

// NewStaticModel validates the scenario and precomputes the kernel tables.
func NewStaticModel(scn *Scenario) (*StaticModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	wfs, err := scn.buildWaitingFuncs()
	if err != nil {
		return nil, err
	}
	n, m := scn.Periods, len(scn.Betas)
	sm := &StaticModel{
		scn:    scn,
		wfs:    wfs,
		totals: scn.TotalDemand(),
		n:      n,
		m:      m,
	}
	sm.kern = make([][]float64, m)
	for j := range sm.kern {
		sm.kern[j] = make([]float64, n) // index dt ∈ [1, n−1]; [0] unused
		for dt := 1; dt <= n-1; dt++ {
			sm.kern[j][dt] = wfs[j].DerivP(1, dt) // = C_j·(dt+1)^{−β_j}
		}
	}
	sm.inW = make([]float64, n)
	sm.outW = make([][]float64, n)
	for i := 0; i < n; i++ {
		sm.outW[i] = make([]float64, n)
		for dt := 1; dt <= n-1; dt++ {
			if scn.NoWrap && i+dt >= n {
				continue // deferral would cross the day boundary
			}
			var s float64
			for j, d := range scn.Demand[i] {
				if d != 0 {
					s += d * sm.kern[j][dt]
				}
			}
			sm.outW[i][dt] = s
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for dt := 1; dt <= n-1; dt++ {
			k := i - dt
			if k < 0 {
				k += n
			}
			s += sm.outW[k][dt] // Σ_j D[k][j]·kern[j][dt]
		}
		sm.inW[i] = s
	}
	return sm, nil
}

// Scenario returns the model's underlying scenario.
func (sm *StaticModel) Scenario() *Scenario { return sm.scn }

// MaxReward returns the box bound for rewards: the smaller of the maximum
// marginal cost of exceeding capacity (Appendix C — the ISP never
// rationally exceeds its marginal benefit) and the normalization reward
// (beyond which every deferrable session already defers).
func (sm *StaticModel) MaxReward() float64 {
	return math.Min(sm.scn.Cost.MaxSlope(), sm.scn.NormReward())
}

// usage computes the TDP usage x and the deferred-into vector In for
// rewards p.
func (sm *StaticModel) usage(p []float64) (x, in []float64) {
	n := sm.n
	x = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		pi := math.Max(p[i], 0)
		in[i] = pi * sm.inW[i]
	}
	for i := 0; i < n; i++ {
		// Out_i = Σ_dt outW[i][dt]·p_{(i+dt) mod n}.
		var out float64
		row := sm.outW[i]
		for dt := 1; dt <= n-1; dt++ {
			k := i + dt
			if k >= n {
				k -= n
			}
			if pk := p[k]; pk > 0 {
				out += row[dt] * pk
			}
		}
		x[i] = sm.totals[i] - out + in[i]
	}
	return x, in
}

// UsageAt returns the TDP usage profile x_i for the given rewards.
func (sm *StaticModel) UsageAt(p []float64) []float64 {
	x, _ := sm.usage(p)
	return x
}

// UsageByType returns the per-period, per-type TDP usage x_i^j — the
// breakdown the TUBE measurement engine observes per traffic class.
func (sm *StaticModel) UsageByType(p []float64) [][]float64 {
	n := sm.n
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, sm.m)
		for j := 0; j < sm.m; j++ {
			xj := sm.scn.Demand[i][j]
			for dt := 1; dt <= n-1; dt++ {
				if !(sm.scn.NoWrap && i+dt >= n) {
					// Outflow from (i, j) toward period i+dt.
					k := i + dt
					if k >= n {
						k -= n
					}
					if pk := p[k]; pk > 0 {
						xj -= sm.scn.Demand[i][j] * sm.kern[j][dt] * pk
					}
				}
				// Inflow into (i, j) from period i−dt.
				src := i - dt
				if src < 0 {
					src += n
				}
				if sm.scn.NoWrap && src+dt >= n {
					continue
				}
				if pi := p[i]; pi > 0 {
					xj += sm.scn.Demand[src][j] * sm.kern[j][dt] * pi
				}
			}
			out[i][j] = xj
		}
	}
	return out
}

// CostAt evaluates the exact (unsmoothed) objective (1) at rewards p.
func (sm *StaticModel) CostAt(p []float64) float64 {
	x, in := sm.usage(p)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i]*in[i] + sm.scn.Cost.Value(x[i]-sm.scn.Capacity[i])
	}
	return c
}

// RewardOutlayAt returns the reward-payment portion Σ p_i·In_i of the cost.
func (sm *StaticModel) RewardOutlayAt(p []float64) float64 {
	_, in := sm.usage(p)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i] * in[i]
	}
	return c
}

// TIPCost returns the ISP's cost with no rewards (time-independent
// pricing): Σ_i f(X_i − A_i).
func (sm *StaticModel) TIPCost() float64 {
	var c float64
	for i := 0; i < sm.n; i++ {
		c += sm.scn.Cost.Value(sm.totals[i] - sm.scn.Capacity[i])
	}
	return c
}

// ProfitAt evaluates the ISP's profit π at rewards p per Prop. 2's
// accounting (eq. 12): revenue at the time-independent usage price,
// minus the rewards paid out, minus the constant marginal operating cost
// d per unit served, minus the capacity-exceedance cost. Prop. 2 shows
// maximizing this is equivalent to minimizing CostAt; the tests verify
// π(p) + CostAt(p) is constant in p.
func (sm *StaticModel) ProfitAt(p []float64, usagePrice, operatingCost float64) float64 {
	x, in := sm.usage(p)
	var revenue, rewards, opCost, congestion float64
	for i := 0; i < sm.n; i++ {
		revenue += usagePrice * sm.totals[i] // ΣX_i = Σx_i (no sessions vanish)
		rewards += p[i] * in[i]
		opCost += operatingCost * x[i]
		congestion += sm.scn.Cost.Value(x[i] - sm.scn.Capacity[i])
	}
	return revenue - rewards - opCost - congestion
}

// DeferredMatrix returns Q where Q[k][i] is the volume deferred from
// period k+1 to period i+1 under rewards p (diagonal zero).
func (sm *StaticModel) DeferredMatrix(p []float64) [][]float64 {
	n := sm.n
	q := make([][]float64, n)
	for k := range q {
		q[k] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		for dt := 1; dt <= n-1; dt++ {
			i := (k + dt) % n
			if pi := p[i]; pi > 0 {
				q[k][i] = sm.outW[k][dt] * pi
			}
		}
	}
	return q
}

// smoothedObjective returns the softplus-smoothed cost with its analytic
// gradient at temperature mu (mu = 0 gives the exact kinked cost and its
// subgradient).
func (sm *StaticModel) smoothedObjective(mu float64) optimize.Objective {
	return optimize.FuncObjective{
		Fn: func(p []float64) float64 {
			x, in := sm.usage(p)
			var c float64
			for i := 0; i < sm.n; i++ {
				c += p[i]*in[i] + sm.scn.Cost.Smooth(x[i]-sm.scn.Capacity[i], mu)
			}
			return c
		},
		GradFn: func(p, grad []float64) {
			n := sm.n
			x, _ := sm.usage(p)
			fp := make([]float64, n) // f'(x_i − A_i)
			for i := 0; i < n; i++ {
				fp[i] = sm.scn.Cost.SmoothDeriv(x[i]-sm.scn.Capacity[i], mu)
			}
			for r := 0; r < n; r++ {
				// d(p_r·In_r)/dp_r = 2p_r·inW[r]; dx_r/dp_r = inW[r].
				g := (2*p[r] + fp[r]) * sm.inW[r]
				// −Σ_{i≠r} f'_i · ∂Out_i/∂p_r; deferring from i to r takes
				// dt(i→r) periods, i.e. i = r − dt (mod n).
				for dt := 1; dt <= n-1; dt++ {
					i := r - dt
					if i < 0 {
						i += n
					}
					if fp[i] != 0 {
						g -= fp[i] * sm.outW[i][dt]
					}
				}
				grad[r] = g
			}
		},
	}
}

// SmoothedObjective exposes the softplus-smoothed cost (with its analytic
// gradient) at temperature mu, for callers plugging in their own solver or
// schedule; mu = 0 gives the exact kinked cost with a subgradient.
func (sm *StaticModel) SmoothedObjective(mu float64) optimize.Objective {
	return sm.smoothedObjective(mu)
}

// Solver selects the optimization method used by SolveWith; the choices
// correspond to the ablation in DESIGN.md §5.
type Solver int

// Available solvers.
const (
	// SolverHomotopy is the production path: projected gradient on a
	// decreasing softplus-smoothing schedule with a coordinate-descent
	// polish.
	SolverHomotopy Solver = iota + 1
	// SolverCoordinate is derivative-free cyclic coordinate descent with
	// exact line search on the unsmoothed cost. On this model's coupled
	// non-smooth cost it can stall slightly above the optimum (within a
	// few percent); it exists as an ablation baseline.
	SolverCoordinate
	// SolverSubgradient is the projected subgradient baseline.
	SolverSubgradient
	// SolverLBFGS runs the smoothing homotopy with an L-BFGS inner solver
	// — fewer evaluations than projected gradient as n grows.
	SolverLBFGS
)

// Solve minimizes the ISP cost over rewards with the production solver.
func (sm *StaticModel) Solve() (*Pricing, error) {
	return sm.SolveWith(SolverHomotopy)
}

// SolveWith minimizes the ISP cost with a specific solver.
func (sm *StaticModel) SolveWith(solver Solver) (*Pricing, error) {
	bounds := optimize.UniformBounds(sm.n, 0, sm.MaxReward())
	x0 := make([]float64, sm.n)
	var (
		res optimize.Result
		err error
	)
	switch solver {
	case SolverHomotopy:
		res, err = optimize.Homotopy(
			func(mu float64) optimize.Objective { return sm.smoothedObjective(mu) },
			sm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
			optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
		)
	case SolverCoordinate:
		res, err = optimize.CoordinateDescent(sm.CostAt, x0, bounds,
			optimize.WithMaxIterations(400), optimize.WithTolerance(1e-9))
	case SolverSubgradient:
		res, err = optimize.ProjectedSubgradient(sm.smoothedObjective(0), x0, bounds,
			optimize.WithMaxIterations(30000), optimize.WithInitialStep(sm.MaxReward()))
	case SolverLBFGS:
		res, err = optimize.HomotopyWith(
			func(obj optimize.Objective, start []float64, b optimize.Bounds, opts ...optimize.Option) (optimize.Result, error) {
				return optimize.LBFGS(obj, start, b, 10, opts...)
			},
			func(mu float64) optimize.Objective { return sm.smoothedObjective(mu) },
			sm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
			optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
		)
	default:
		return nil, fmt.Errorf("unknown solver %d: %w", solver, ErrBadScenario)
	}
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("static solve: %w", err)
	}
	return sm.pricingAt(res), nil
}

// SolveForPeriod optimizes only reward p_{period+1}, holding the others at
// their values in p. It returns the optimal reward and the resulting exact
// cost. This one-dimensional solve is the inner step of the online
// algorithm (§III-B).
func (sm *StaticModel) SolveForPeriod(p []float64, period int) (float64, float64, error) {
	if period < 0 || period >= sm.n {
		return 0, 0, fmt.Errorf("period %d of %d: %w", period, sm.n, ErrBadScenario)
	}
	work := append([]float64(nil), p...)
	best, fbest := optimize.Brent(func(t float64) float64 {
		work[period] = t
		return sm.CostAt(work)
	}, 0, sm.MaxReward(), 1e-10)
	return best, fbest, nil
}

// pricingAt packages a solver result into a Pricing.
func (sm *StaticModel) pricingAt(res optimize.Result) *Pricing {
	p := res.X
	x, in := sm.usage(p)
	var outlay float64
	for i := 0; i < sm.n; i++ {
		outlay += p[i] * in[i]
	}
	// Clean up numerically-zero rewards for presentation.
	rewards := append([]float64(nil), p...)
	for i, r := range rewards {
		if math.Abs(r) < 1e-9 {
			rewards[i] = 0
		}
	}
	return &Pricing{
		Rewards:      rewards,
		Usage:        x,
		Cost:         sm.CostAt(p),
		TIPCost:      sm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}
}
