package core

import (
	"fmt"
	"math"

	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// StaticModel is the §II static session model: sessions are fixed blobs of
// demand that may be deferred between periods according to waiting
// functions, with no carry-over of unfinished work. Under Prop. 3's
// conditions (satisfied by construction here) the cost is convex in the
// rewards, so Solve finds the global optimum.
//
// Because the paper's waiting family w_β(p,t) = C_β·p/(t+1)^β is linear in
// p, the model precomputes the flattened kernel tables of deferKernel at
// construction, making each cost or gradient evaluation an O(n²) pass of
// branch-free dot products with no allocations and no transcendental
// calls — this is the "choice of representation" §II argues keeps the
// optimization tractable in near real time.
type StaticModel struct {
	scn    *Scenario
	wfs    []waiting.PowerLaw
	totals []float64 // X_i
	kd     *deferKernel
	ws     wsPool
	n, m   int
}

// NewStaticModel validates the scenario and precomputes the kernel tables.
func NewStaticModel(scn *Scenario) (*StaticModel, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	wfs, err := scn.buildWaitingFuncs()
	if err != nil {
		return nil, err
	}
	n, m := scn.Periods, len(scn.Betas)
	sm := &StaticModel{
		scn:    scn,
		wfs:    wfs,
		totals: scn.TotalDemand(),
		kd:     newDeferKernel(funcsOf(wfs), scn.Demand, n, scn.NoWrap),
		n:      n,
		m:      m,
	}
	sm.ws.init(n)
	return sm, nil
}

// Scenario returns the model's underlying scenario.
func (sm *StaticModel) Scenario() *Scenario { return sm.scn }

// MaxReward returns the box bound for rewards: the smaller of the maximum
// marginal cost of exceeding capacity (Appendix C — the ISP never
// rationally exceeds its marginal benefit) and the normalization reward
// (beyond which every deferrable session already defers).
func (sm *StaticModel) MaxReward() float64 {
	return math.Min(sm.scn.Cost.MaxSlope(), sm.scn.NormReward())
}

// SetDemandRow replaces the demand estimate for period i (0-based) and
// incrementally updates the kernel tables in O(n·m) — the online
// algorithm's per-period estimate fold, which previously rebuilt the whole
// model.
func (sm *StaticModel) SetDemandRow(i int, row []float64) error {
	if err := checkPeriod(i, sm.n); err != nil {
		return err
	}
	if len(row) != sm.m {
		return fmt.Errorf("demand row with %d types, want %d: %w", len(row), sm.m, ErrBadScenario)
	}
	var total float64
	for j, d := range row {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("demand %v for type %d: %w", d, j, ErrBadScenario)
		}
		total += d
	}
	copy(sm.scn.Demand[i], row)
	sm.totals[i] = total
	sm.kd.setDemandRow(i, sm.scn.Demand[i])
	return nil
}

// usageInto computes the TDP usage x and the deferred-into vector In for
// rewards p, into the workspace.
func (sm *StaticModel) usageInto(p []float64, w *evalWS) (x, in []float64) {
	sm.kd.arrivalsInto(p, sm.totals, w.x, w.in, w.p2)
	return w.x, w.in
}

// UsageAt returns the TDP usage profile x_i for the given rewards.
func (sm *StaticModel) UsageAt(p []float64) []float64 {
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, _ := sm.usageInto(p, w)
	return append([]float64(nil), x...)
}

// UsageByType returns the per-period, per-type TDP usage x_i^j — the
// breakdown the TUBE measurement engine observes per traffic class.
func (sm *StaticModel) UsageByType(p []float64) [][]float64 {
	n := sm.n
	kern := sm.kd.kern
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, sm.m)
		for j := 0; j < sm.m; j++ {
			xj := sm.scn.Demand[i][j]
			for dt := 1; dt <= n-1; dt++ {
				if !(sm.scn.NoWrap && i+dt >= n) {
					// Outflow from (i, j) toward period i+dt.
					k := i + dt
					if k >= n {
						k -= n
					}
					if pk := p[k]; pk > 0 {
						xj -= sm.scn.Demand[i][j] * kern[j*n+dt] * pk
					}
				}
				// Inflow into (i, j) from period i−dt.
				src := i - dt
				if src < 0 {
					src += n
				}
				if sm.scn.NoWrap && src+dt >= n {
					continue
				}
				if pi := p[i]; pi > 0 {
					xj += sm.scn.Demand[src][j] * kern[j*n+dt] * pi
				}
			}
			out[i][j] = xj
		}
	}
	return out
}

// CostAt evaluates the exact (unsmoothed) objective (1) at rewards p.
func (sm *StaticModel) CostAt(p []float64) float64 {
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, in := sm.usageInto(p, w)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i]*in[i] + sm.scn.Cost.Value(x[i]-sm.scn.Capacity[i])
	}
	return c
}

// RewardOutlayAt returns the reward-payment portion Σ p_i·In_i of the cost.
func (sm *StaticModel) RewardOutlayAt(p []float64) float64 {
	w := sm.ws.get()
	defer sm.ws.put(w)
	_, in := sm.usageInto(p, w)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i] * in[i]
	}
	return c
}

// TIPCost returns the ISP's cost with no rewards (time-independent
// pricing): Σ_i f(X_i − A_i).
func (sm *StaticModel) TIPCost() float64 {
	var c float64
	for i := 0; i < sm.n; i++ {
		c += sm.scn.Cost.Value(sm.totals[i] - sm.scn.Capacity[i])
	}
	return c
}

// ProfitAt evaluates the ISP's profit π at rewards p per Prop. 2's
// accounting (eq. 12): revenue at the time-independent usage price,
// minus the rewards paid out, minus the constant marginal operating cost
// d per unit served, minus the capacity-exceedance cost. Prop. 2 shows
// maximizing this is equivalent to minimizing CostAt; the tests verify
// π(p) + CostAt(p) is constant in p.
func (sm *StaticModel) ProfitAt(p []float64, usagePrice, operatingCost float64) float64 {
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, in := sm.usageInto(p, w)
	var revenue, rewards, opCost, congestion float64
	for i := 0; i < sm.n; i++ {
		revenue += usagePrice * sm.totals[i] // ΣX_i = Σx_i (no sessions vanish)
		rewards += p[i] * in[i]
		opCost += operatingCost * x[i]
		congestion += sm.scn.Cost.Value(x[i] - sm.scn.Capacity[i])
	}
	return revenue - rewards - opCost - congestion
}

// DeferredMatrix returns Q where Q[k][i] is the volume deferred from
// period k+1 to period i+1 under rewards p (diagonal zero).
func (sm *StaticModel) DeferredMatrix(p []float64) [][]float64 {
	n := sm.n
	q := make([][]float64, n)
	for k := range q {
		q[k] = make([]float64, n)
	}
	for k := 0; k < n; k++ {
		row := sm.kd.outW[k*n : k*n+n]
		for dt := 1; dt <= n-1; dt++ {
			i := (k + dt) % n
			if pi := p[i]; pi > 0 {
				q[k][i] = row[dt] * pi
			}
		}
	}
	return q
}

// staticObjective is the softplus-smoothed cost with its analytic
// gradient at temperature mu (mu = 0 gives the exact kinked cost and its
// subgradient). It implements optimize.ValueGrader: the fused path
// computes the usage profile once and derives both the value and the
// gradient from it, sharing one exponential per (period, breakpoint).
type staticObjective struct {
	sm *StaticModel
	mu float64
}

var _ optimize.ValueGrader = staticObjective{}

// Value implements optimize.Objective.
func (o staticObjective) Value(p []float64) float64 {
	sm := o.sm
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, in := sm.usageInto(p, w)
	var c float64
	for i := 0; i < sm.n; i++ {
		c += p[i]*in[i] + sm.scn.Cost.Smooth(x[i]-sm.scn.Capacity[i], o.mu)
	}
	return c
}

// Grad implements optimize.Objective.
func (o staticObjective) Grad(p, grad []float64) {
	sm := o.sm
	n := sm.n
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, _ := sm.usageInto(p, w)
	for i := 0; i < n; i++ {
		fp := sm.scn.Cost.SmoothDeriv(x[i]-sm.scn.Capacity[i], o.mu)
		w.lam2[i] = fp
		w.lam2[n+i] = fp
	}
	sm.kd.gradGather(p, w.lam2, grad)
}

// ValueGrad implements optimize.ValueGrader.
func (o staticObjective) ValueGrad(p, grad []float64) float64 {
	sm := o.sm
	n := sm.n
	w := sm.ws.get()
	defer sm.ws.put(w)
	x, in := sm.usageInto(p, w)
	var c float64
	for i := 0; i < n; i++ {
		v, fp := sm.scn.Cost.SmoothBoth(x[i]-sm.scn.Capacity[i], o.mu)
		c += p[i]*in[i] + v
		w.lam2[i] = fp
		w.lam2[n+i] = fp
	}
	sm.kd.gradGather(p, w.lam2, grad)
	return c
}

func (sm *StaticModel) smoothedObjective(mu float64) optimize.Objective {
	return staticObjective{sm: sm, mu: mu}
}

// SmoothedObjective exposes the softplus-smoothed cost (with its analytic
// gradient and a fused optimize.ValueGrader path) at temperature mu, for
// callers plugging in their own solver or schedule; mu = 0 gives the exact
// kinked cost with a subgradient.
func (sm *StaticModel) SmoothedObjective(mu float64) optimize.Objective {
	return sm.smoothedObjective(mu)
}

// Solver selects the optimization method used by SolveWith; the choices
// correspond to the ablation in DESIGN.md §5.
type Solver int

// Available solvers.
const (
	// SolverHomotopy is the production path: projected gradient on a
	// decreasing softplus-smoothing schedule with a coordinate-descent
	// polish.
	SolverHomotopy Solver = iota + 1
	// SolverCoordinate is derivative-free cyclic coordinate descent with
	// exact line search on the unsmoothed cost. On this model's coupled
	// non-smooth cost it can stall slightly above the optimum (within a
	// few percent); it exists as an ablation baseline.
	SolverCoordinate
	// SolverSubgradient is the projected subgradient baseline.
	SolverSubgradient
	// SolverLBFGS runs the smoothing homotopy with an L-BFGS inner solver
	// — fewer evaluations than projected gradient as n grows.
	SolverLBFGS
)

// Solve minimizes the ISP cost over rewards with the production solver.
// Options are forwarded to the solver; in particular
// optimize.WithWarmStart(prev) seeds the solve from a previous day's
// schedule and truncates the smoothing homotopy.
func (sm *StaticModel) Solve(opts ...optimize.Option) (*Pricing, error) {
	return sm.SolveWith(SolverHomotopy, opts...)
}

// SolveWith minimizes the ISP cost with a specific solver.
func (sm *StaticModel) SolveWith(solver Solver, opts ...optimize.Option) (*Pricing, error) {
	bounds := optimize.UniformBounds(sm.n, 0, sm.MaxReward())
	x0 := make([]float64, sm.n)
	var (
		res optimize.Result
		err error
	)
	switch solver {
	case SolverHomotopy:
		res, err = optimize.Homotopy(
			func(mu float64) optimize.Objective { return sm.smoothedObjective(mu) },
			sm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
			append([]optimize.Option{
				optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
			}, opts...)...,
		)
	case SolverCoordinate:
		res, err = optimize.CoordinateDescent(sm.CostAt, x0, bounds,
			append([]optimize.Option{
				optimize.WithMaxIterations(400), optimize.WithTolerance(1e-9),
			}, opts...)...)
	case SolverSubgradient:
		res, err = optimize.ProjectedSubgradient(sm.smoothedObjective(0), x0, bounds,
			append([]optimize.Option{
				optimize.WithMaxIterations(30000), optimize.WithInitialStep(sm.MaxReward()),
			}, opts...)...)
	case SolverLBFGS:
		res, err = optimize.HomotopyWith(
			func(obj optimize.Objective, start []float64, b optimize.Bounds, opts ...optimize.Option) (optimize.Result, error) {
				return optimize.LBFGS(obj, start, b, 10, opts...)
			},
			func(mu float64) optimize.Objective { return sm.smoothedObjective(mu) },
			sm.CostAt, x0, bounds, optimize.DefaultSchedule(), true,
			append([]optimize.Option{
				optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8),
			}, opts...)...,
		)
	default:
		return nil, fmt.Errorf("unknown solver %d: %w", solver, ErrBadScenario)
	}
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("static solve: %w", err)
	}
	return sm.pricingAt(res), nil
}

// SolveForPeriod optimizes only reward p_{period+1}, holding the others at
// their values in p. It returns the optimal reward and the resulting exact
// cost. This one-dimensional solve is the inner step of the online
// algorithm (§III-B).
func (sm *StaticModel) SolveForPeriod(p []float64, period int) (float64, float64, error) {
	ps, err := sm.solveForPeriod(p, period, 0, false)
	if err != nil {
		return 0, 0, err
	}
	return ps.Reward, ps.Cost, nil
}

// SolveForPeriodWarm is SolveForPeriod seeded with the previous reward for
// the slot: the one-dimensional search first brackets around prev and only
// falls back to the full [0, MaxReward] interval when the minimizer pins
// an interior bracket edge (the cost is convex along a coordinate, so an
// interior minimizer of the sub-bracket is the global one).
func (sm *StaticModel) SolveForPeriodWarm(p []float64, period int, prev float64) (PeriodSolve, error) {
	return sm.solveForPeriod(p, period, prev, true)
}

// SolveForPeriodCold is SolveForPeriod with the solve report (full-bracket
// search, eval count included) — the cold baseline the warm-vs-cold
// comparisons measure against.
func (sm *StaticModel) SolveForPeriodCold(p []float64, period int) (PeriodSolve, error) {
	return sm.solveForPeriod(p, period, 0, false)
}

func (sm *StaticModel) solveForPeriod(p []float64, period int, prev float64, warm bool) (PeriodSolve, error) {
	if err := checkPeriod(period, sm.n); err != nil {
		return PeriodSolve{}, err
	}
	w := sm.ws.get()
	defer sm.ws.put(w)

	// O(n) incremental coordinate cost: with p_r zeroed once (one O(n²)
	// pass), the usage profile is affine in p_r⁺ with sensitivity coef, so
	// each Brent evaluation recomputes only n cost terms instead of the
	// full quadratic usage pass.
	copy(w.pwork, p)
	w.pwork[period] = 0
	sm.kd.arrivalsInto(w.pwork, sm.totals, w.baseX, w.in, w.p2)
	var constOutlay float64
	for i := 0; i < sm.n; i++ {
		constOutlay += w.pwork[i] * w.in[i]
	}
	sm.kd.periodCoef(period, w.coef)
	inWr := sm.kd.inW[period]

	evals := 0
	eval := func(t float64) float64 {
		evals++
		tp := t
		if tp < 0 {
			tp = 0
		}
		c := constOutlay + t*tp*inWr
		for i := 0; i < sm.n; i++ {
			c += sm.scn.Cost.Value(w.baseX[i] + w.coef[i]*tp - sm.scn.Capacity[i])
		}
		return c
	}

	best, _, usedWarm := minimizeCoord(eval, sm.MaxReward(), prev, warm)

	// Report the canonical exact cost at the optimum (one O(n²) pass), so
	// callers see the same value CostAt would produce.
	w.pwork[period] = best
	fbest := sm.CostAt(w.pwork)
	return PeriodSolve{Reward: best, Cost: fbest, Evals: evals, Warm: usedWarm}, nil
}

// minimizeCoord runs the one-dimensional reward search over [0, maxR]. A
// warm solve first tries a ±maxR/32 bracket around prev at a relaxed
// x-tolerance — when the coordinate minimum sits at a kink of the
// piecewise-linear cost the cost error is first-order in the x-tolerance,
// so 1e-7 in the reward keeps the cost within ~1e-10 of the cold answer —
// and accepts the result unless it pinned an artificial (interior)
// bracket edge. By convexity along a coordinate, an interior minimizer of
// the sub-bracket is the global one; a pinned edge means the true
// minimizer lies outside, so the solve falls back to the full interval at
// the cold tolerance.
func minimizeCoord(eval func(float64) float64, maxR, prev float64, warm bool) (best, fbest float64, usedWarm bool) {
	const (
		coldTol = 1e-10
		warmTol = 1e-7
	)
	if warm {
		half := maxR / 32
		lo := math.Max(0, prev-half)
		hi := math.Min(maxR, prev+half)
		if hi > lo {
			best, fbest = optimize.Brent(eval, lo, hi, warmTol)
			edge := 4 * warmTol * (1 + math.Abs(best))
			loPinned := lo > 0 && best-lo <= edge
			hiPinned := hi < maxR && hi-best <= edge
			if !loPinned && !hiPinned {
				return best, fbest, true
			}
		}
	}
	best, fbest = optimize.Brent(eval, 0, maxR, coldTol)
	return best, fbest, false
}

// pricingAt packages a solver result into a Pricing. The solver already
// reports the exact cost at the optimum (the homotopy driver's final
// re-evaluation), so the cost is not recomputed here.
func (sm *StaticModel) pricingAt(res optimize.Result) *Pricing {
	p := res.X
	w := sm.ws.get()
	x, in := sm.usageInto(p, w)
	var outlay float64
	for i := 0; i < sm.n; i++ {
		outlay += p[i] * in[i]
	}
	usage := append([]float64(nil), x...)
	sm.ws.put(w)
	// Clean up numerically-zero rewards for presentation.
	rewards := append([]float64(nil), p...)
	for i, r := range rewards {
		if math.Abs(r) < 1e-9 {
			rewards[i] = 0
		}
	}
	return &Pricing{
		Rewards:      rewards,
		Usage:        usage,
		Cost:         res.F,
		TIPCost:      sm.TIPCost(),
		RewardOutlay: outlay,
		Iterations:   res.Iterations,
		Evals:        res.Evals,
	}
}
