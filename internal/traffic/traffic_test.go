package traffic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tdp/internal/waiting"
)

func TestProfileValidate(t *testing.T) {
	if err := NewProfile([]float64{1, 2}).Validate(); err != nil {
		t.Errorf("valid profile: %v", err)
	}
	if err := NewProfile(nil).Validate(); !errors.Is(err, ErrBadProfile) {
		t.Errorf("empty: err = %v, want ErrBadProfile", err)
	}
	p := Profile{Usage: []float64{1}, PeriodSeconds: 0}
	if err := p.Validate(); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero period: err = %v, want ErrBadProfile", err)
	}
}

func TestProfileTotal(t *testing.T) {
	// 1 unit of 10 MBps for one 1800 s period = 18000 MB = 18 GB.
	p := NewProfile([]float64{1})
	if got := p.Total(); math.Abs(got-18) > 1e-12 {
		t.Errorf("Total = %v GB, want 18", got)
	}
}

func TestProfileMeanPeak(t *testing.T) {
	p := NewProfile([]float64{10, 20, 30})
	if m := p.Mean(); m != 20 {
		t.Errorf("Mean = %v, want 20", m)
	}
	if r := p.PeakToTrough(); r != 20 {
		t.Errorf("PeakToTrough = %v, want 20", r)
	}
}

func TestResidueSpreadFlatProfileIsZero(t *testing.T) {
	p := NewProfile([]float64{7, 7, 7, 7})
	if rs := p.ResidueSpread(); rs != 0 {
		t.Errorf("ResidueSpread of flat profile = %v, want 0", rs)
	}
}

func TestResidueSpreadKnownValue(t *testing.T) {
	// Usage (10,30): mean 20, Σ|u−mean| = 20 units of 10 MBps over 1800 s
	// = 20·10·1800/1000 = 360 GB.
	p := NewProfile([]float64{10, 30})
	if rs := p.ResidueSpread(); math.Abs(rs-360) > 1e-9 {
		t.Errorf("ResidueSpread = %v, want 360", rs)
	}
}

func TestAreaBetween(t *testing.T) {
	a := NewProfile([]float64{10, 20})
	b := NewProfile([]float64{12, 16})
	got, err := AreaBetween(a, b)
	if err != nil {
		t.Fatalf("AreaBetween: %v", err)
	}
	want := (2.0 + 4.0) * 10 * 1800 / 1000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AreaBetween = %v, want %v", got, want)
	}
	if _, err := AreaBetween(a, NewProfile([]float64{1})); !errors.Is(err, ErrBadProfile) {
		t.Errorf("mismatched lengths: err = %v, want ErrBadProfile", err)
	}
}

func TestAreaBetweenSelfIsZero(t *testing.T) {
	p := NewProfile([]float64{3, 1, 4, 1, 5})
	got, err := AreaBetween(p, p)
	if err != nil {
		t.Fatalf("AreaBetween: %v", err)
	}
	if got != 0 {
		t.Errorf("AreaBetween(p,p) = %v, want 0", got)
	}
}

func TestOverCapacityVolume(t *testing.T) {
	p := NewProfile([]float64{15, 25})
	cp := ConstantCapacity(2, 20)
	got, err := p.OverCapacityVolume(cp.Available)
	if err != nil {
		t.Fatalf("OverCapacityVolume: %v", err)
	}
	want := 5.0 * 10 * 1800 / 1000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OverCapacityVolume = %v, want %v", got, want)
	}
	if _, err := p.OverCapacityVolume([]float64{1}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("short capacity: err = %v, want ErrBadProfile", err)
	}
}

func TestCapAdjusted(t *testing.T) {
	cp := CapAdjusted(20, []float64{5, 25, 0})
	want := []float64{15, 0, 20}
	for i := range want {
		if cp.Available[i] != want[i] {
			t.Errorf("Available[%d] = %v, want %v", i, cp.Available[i], want[i])
		}
	}
}

func TestTargetUtilization(t *testing.T) {
	// The paper uses 80% of physical capacity as the operating target.
	if got := TargetUtilization(22.5, 0.8); math.Abs(got-18) > 1e-12 {
		t.Errorf("TargetUtilization = %v, want 18", got)
	}
}

func TestPaperTIPProfileMetrics(t *testing.T) {
	// Sanity-check the headline TIP inputs: with Table VII demand and the
	// A=18 capacity of §V-A, the day has substantial over-capacity volume
	// and a large residue spread.
	p := NewProfile(waiting.Totals(waiting.Demand48()))
	if len(p.Usage) != 48 {
		t.Fatalf("expected 48 periods")
	}
	if pt := p.PeakToTrough(); math.Abs(pt-20) > 1e-12 { // 200 MBps in 10 MBps units
		t.Errorf("TIP peak-to-trough = %v, want 20 (200 MBps)", pt)
	}
	over, err := p.OverCapacityVolume(ConstantCapacity(48, 18).Available)
	if err != nil {
		t.Fatalf("OverCapacityVolume: %v", err)
	}
	if over <= 0 {
		t.Error("TIP profile should exceed capacity somewhere")
	}
	if rs := p.ResidueSpread(); rs <= 0 {
		t.Error("TIP residue spread should be positive")
	}
}

// Property: residue spread is translation-invariant in shape terms —
// scaling usage by c ≥ 0 scales the spread by c.
func TestResidueSpreadScalingProperty(t *testing.T) {
	f := func(u1, u2, u3 uint8, cr uint8) bool {
		c := float64(cr%10) / 2
		p := NewProfile([]float64{float64(u1), float64(u2), float64(u3)})
		scaled := NewProfile([]float64{c * float64(u1), c * float64(u2), c * float64(u3)})
		return math.Abs(scaled.ResidueSpread()-c*p.ResidueSpread()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality for AreaBetween.
func TestAreaBetweenTriangleProperty(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 uint8) bool {
		a := NewProfile([]float64{float64(a1), float64(a2)})
		b := NewProfile([]float64{float64(b1), float64(b2)})
		c := NewProfile([]float64{float64(c1), float64(c2)})
		ab, err1 := AreaBetween(a, b)
		bc, err2 := AreaBetween(b, c)
		ac, err3 := AreaBetween(a, c)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
