// Package traffic provides demand/usage profiles over periods of a day and
// the aggregate metrics the paper evaluates pricing with: residue spread,
// peak-to-trough range, and the volume redistributed between two profiles.
//
// Units follow the paper's simulations: usage in 10 MBps, one period
// defaulting to half an hour (48 periods/day).
package traffic

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadProfile is returned for empty or mismatched profiles.
var ErrBadProfile = errors.New("traffic: invalid profile")

// DefaultPeriodSeconds is the duration of one period in the 48-period
// model: half an hour.
const DefaultPeriodSeconds = 1800.0

// Profile is a per-period usage (or demand) trajectory.
type Profile struct {
	// Usage holds one value per period, in 10 MBps.
	Usage []float64
	// PeriodSeconds is the duration of each period.
	PeriodSeconds float64
}

// NewProfile builds a profile with the default half-hour periods.
func NewProfile(usage []float64) Profile {
	return Profile{Usage: append([]float64(nil), usage...), PeriodSeconds: DefaultPeriodSeconds}
}

// Validate checks the profile is non-empty with a positive period length.
func (p Profile) Validate() error {
	if len(p.Usage) == 0 {
		return fmt.Errorf("empty usage: %w", ErrBadProfile)
	}
	if p.PeriodSeconds <= 0 {
		return fmt.Errorf("period %v s: %w", p.PeriodSeconds, ErrBadProfile)
	}
	return nil
}

// Total returns the total volume carried over the day in gigabytes,
// treating usage values as 10 MBps sustained for each period.
func (p Profile) Total() float64 {
	var s float64
	for _, u := range p.Usage {
		s += u
	}
	return s * 10 * p.PeriodSeconds / 1000 // 10 MBps → MB/s, /1000 → GB
}

// Mean returns the average per-period usage.
func (p Profile) Mean() float64 {
	if len(p.Usage) == 0 {
		return 0
	}
	var s float64
	for _, u := range p.Usage {
		s += u
	}
	return s / float64(len(p.Usage))
}

// PeakToTrough returns max usage − min usage, the paper's "maximum minus
// minimum usage" measure (Fig. 5 reports it dropping from 200 to 119 MBps).
func (p Profile) PeakToTrough() float64 {
	if len(p.Usage) == 0 {
		return 0
	}
	mx, mn := p.Usage[0], p.Usage[0]
	for _, u := range p.Usage {
		mx = math.Max(mx, u)
		mn = math.Min(mn, u)
	}
	return mx - mn
}

// ResidueSpread is the paper's §V-A metric: the area (in GB) between the
// profile and a flat profile carrying the same total usage.
func (p Profile) ResidueSpread() float64 {
	mean := p.Mean()
	var s float64
	for _, u := range p.Usage {
		s += math.Abs(u - mean)
	}
	return s * 10 * p.PeriodSeconds / 1000
}

// AreaBetween returns the area (GB) between two profiles with the same
// period structure — the paper's "traffic redistributed over a day".
func AreaBetween(a, b Profile) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	// Period length is configuration copied from construction, never the
	// result of arithmetic: profiles either share the same structure or
	// they don't, so exact inequality is the intended test.
	//lint:allow floateq structural-identity check on copied configuration, not computed values
	if len(a.Usage) != len(b.Usage) || a.PeriodSeconds != b.PeriodSeconds {
		return 0, fmt.Errorf("profiles %d×%vs vs %d×%vs: %w",
			len(a.Usage), a.PeriodSeconds, len(b.Usage), b.PeriodSeconds, ErrBadProfile)
	}
	var s float64
	for i := range a.Usage {
		s += math.Abs(a.Usage[i] - b.Usage[i])
	}
	return s * 10 * a.PeriodSeconds / 1000, nil
}

// OverCapacityVolume returns the total volume (GB) exceeding the given
// per-period capacities.
func (p Profile) OverCapacityVolume(capacity []float64) (float64, error) {
	if len(capacity) != len(p.Usage) {
		return 0, fmt.Errorf("capacity has %d periods, profile %d: %w",
			len(capacity), len(p.Usage), ErrBadProfile)
	}
	var s float64
	for i, u := range p.Usage {
		if over := u - capacity[i]; over > 0 {
			s += over
		}
	}
	return s * 10 * p.PeriodSeconds / 1000, nil
}

// CapacityPlan is the per-period available capacity A_i. The paper models
// usage caps and irrational-user cushions by subtracting cap-exempt usage
// from a physical capacity (§II).
type CapacityPlan struct {
	Available []float64 // A_i per period, 10 MBps
}

// ConstantCapacity returns an n-period plan with the same capacity each
// period.
func ConstantCapacity(n int, a float64) CapacityPlan {
	out := make([]float64, n)
	for i := range out {
		out[i] = a
	}
	return CapacityPlan{Available: out}
}

// CapAdjusted builds the paper's cap-adjusted plan: physical capacity minus
// the usage of customers below the usage cap (not subject to TDP), clamped
// at zero.
func CapAdjusted(physical float64, belowCapUsage []float64) CapacityPlan {
	out := make([]float64, len(belowCapUsage))
	for i, u := range belowCapUsage {
		out[i] = math.Max(physical-u, 0)
	}
	return CapacityPlan{Available: out}
}

// TargetUtilization scales a physical capacity to the operating target the
// paper mentions (ISPs target ≤ 80% of physical capacity).
func TargetUtilization(physical, fraction float64) float64 {
	return physical * fraction
}
