// Package parallel is the bounded worker pool behind the solver and
// experiment hot paths: multistart restarts, scenario sweeps, and the
// tubebench experiment fan-out all run independent subproblems, so they
// share one primitive — run fn(0..n-1) on at most `jobs` goroutines,
// keep results in index order, and stop early on the first failure.
//
// Determinism contract: results are always delivered in task-index
// order, and the reported error is the one from the lowest-indexed task
// that failed among those that ran. Callers that also fix per-task
// seeds (see optimize.MultistartJobs) therefore produce bit-identical
// output for every worker count, including jobs=1.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs normalizes a worker-count request: values ≤ 0 mean "one worker
// per available CPU", everything else is taken as-is.
func Jobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// ForEach runs fn(i) for every i in [0, n) on at most jobs workers
// (jobs ≤ 0 means one per CPU). It returns after all started tasks have
// finished. When a task fails or ctx is cancelled, no further tasks are
// started; tasks already running are not interrupted, so fn should poll
// ctx itself if it is long-running. The returned error is the error of
// the lowest-indexed failing task, or ctx's error if the context was
// cancelled before any task failed.
//
// fn is called from multiple goroutines and must be safe for concurrent
// use when jobs != 1.
func ForEach(ctx context.Context, jobs, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		// Serial fast path: no goroutines, same contract.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next    atomic.Int64
		mu      sync.Mutex
		failIdx = n
		failErr error
		wg      sync.WaitGroup
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < failIdx {
						failIdx, failErr = i, err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return failErr
	}
	// Our own cancel only fires via the defer (not yet) or on a task
	// failure (returned above), so a done context here means the parent
	// was cancelled and some tasks were skipped.
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on at most jobs workers and
// returns the results in index order — out[i] is fn(i)'s value
// regardless of completion order. On error the partial results are
// discarded and the lowest-indexed task error is returned (see ForEach).
func Map[T any](ctx context.Context, jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, jobs, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
