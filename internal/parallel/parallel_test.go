package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingIsDeterministic(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		out, err := Map(context.Background(), jobs, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	const n = 257
	var counts [n]atomic.Int32
	if err := ForEach(context.Background(), 7, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	const jobs = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	if err := ForEach(context.Background(), jobs, 50, func(i int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("observed %d concurrent tasks, want ≤ %d", p, jobs)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Every task fails; whatever interleaving happens, the reported
	// error must be from the lowest-indexed task that ran — and since
	// task 0 always runs, that is task 0.
	for _, jobs := range []int{1, 4} {
		err := ForEach(context.Background(), jobs, 20, func(i int) error {
			return fmt.Errorf("task %d", i)
		})
		if err == nil || err.Error() != "task 0" {
			t.Errorf("jobs=%d: err = %v, want task 0", jobs, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	wantErr := errors.New("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return wantErr
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := started.Load(); s == 1000 {
		t.Error("all tasks started despite early failure")
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	var once sync.Once
	err := ForEach(ctx, 2, 1000, func(i int) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r := ran.Load(); r == 1000 {
		t.Error("cancellation did not stop task dispatch")
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(i int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if out != nil {
		t.Errorf("partial results returned: %v", out)
	}
}

func TestJobsNormalization(t *testing.T) {
	if Jobs(0) < 1 {
		t.Errorf("Jobs(0) = %d, want ≥ 1", Jobs(0))
	}
	if Jobs(-3) < 1 {
		t.Errorf("Jobs(-3) = %d, want ≥ 1", Jobs(-3))
	}
	if Jobs(5) != 5 {
		t.Errorf("Jobs(5) = %d, want 5", Jobs(5))
	}
}
