package mechanism

import (
	"fmt"
	"math"

	"tdp/internal/core"
)

func init() {
	Register("reverse", func(p Params) (Pricer, error) { return NewReverse(p) })
}

// Reverse is reverse pricing after Jung & Kim ("Resource Allocation
// with Reverse Pricing for Communication Networks"): instead of
// surcharging congestion, the provider *gives back* — it posts rebates
// that grow with instantaneous spare capacity, steering demand toward
// under-utilized resources and recovering utilization the forward
// price would leave stranded.
//
// Per period the posted reward is γ·P·slack_i/A_i — the normalization
// reward scaled by relative under-utilization — capped at the common
// reward cap. Usage responds to the posted rewards (deferral into a
// rewarded trough shrinks the very slack that priced it), so the plan
// is the damped fixed point of post → react → re-post, iterated to
// convergence: exactly the provider/user price-update dynamic the
// reverse-pricing scheme runs in real time, collapsed into the day
// plan.
type Reverse struct {
	gamma  float64
	rounds int
}

// NewReverse validates the gain (default 1) and iteration cap
// (default 32 — the damped iteration halves its error per round, so the
// default lands well below solver tolerance).
func NewReverse(p Params) (*Reverse, error) {
	if p.Gamma < 0 || math.IsNaN(p.Gamma) || math.IsInf(p.Gamma, 0) {
		return nil, fmt.Errorf("reverse gamma %v: %w", p.Gamma, ErrBadMechanism)
	}
	if p.Rounds < 0 {
		return nil, fmt.Errorf("reverse rounds %d: %w", p.Rounds, ErrBadMechanism)
	}
	r := &Reverse{gamma: p.Gamma, rounds: p.Rounds}
	if r.gamma == 0 {
		r.gamma = 1
	}
	if r.rounds == 0 {
		r.rounds = 32
	}
	return r, nil
}

// Name implements Pricer.
func (r *Reverse) Name() string { return "reverse" }

// PlanDay implements Pricer. The fixed point starts from the observed
// usage profile when one is supplied, otherwise from the declared TIP
// demand (the zero-reward reaction).
func (r *Reverse) PlanDay(scn *core.Scenario, obs *Observation) ([]float64, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, fmt.Errorf("reverse plan: %w", err)
	}
	n := scn.Periods
	maxR := maxReward(scn)
	normP := scn.NormReward()

	p := make([]float64, n)
	x := scn.TotalDemand()
	if obs != nil && len(obs.Usage) == n {
		x = append([]float64(nil), obs.Usage...)
	}
	for iter := 0; iter < r.rounds; iter++ {
		var moved float64
		for i := 0; i < n; i++ {
			target := 0.0
			if a := scn.Capacity[i]; a > 0 {
				if slack := a - x[i]; slack > 0 {
					target = math.Min(r.gamma*normP*slack/a, maxR)
				}
			}
			// Damped half-step toward the posted target: the reward a
			// trough posts shrinks the slack that justified it, so the
			// undamped update can ring between over- and under-posting.
			next := 0.5*p[i] + 0.5*target
			moved += math.Abs(next - p[i])
			p[i] = next
		}
		x = model.UsageAt(p)
		if moved < 1e-12*float64(n) {
			break
		}
	}
	return p, nil
}
