// Package mechanism is the pricing-mechanism zoo: pluggable Pricer
// backends that each plan a day's reward surface for a pricing scenario,
// so competing mechanisms from the literature can be benchmarked
// head-to-head under identical declarative traces.
//
// The paper's own TDP reward optimizer ("tdp") is one backend among
// peers: static time-of-day multiplier pricing ("static-tod", the wanctl
// windows-×-multipliers idiom), the fixed-budget rebate of Loiseau et
// al. ("rebate"), reverse pricing after Jung & Kim ("reverse"), and the
// do-nothing TIP baseline ("none"). All backends emit a per-period
// reward schedule in the scenario's money units, and Evaluate scores any
// schedule under the same §II static reaction model, so ISP cost, user
// welfare, and congestion overflow are directly comparable across
// mechanisms.
package mechanism

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"tdp/internal/core"
)

// ErrBadMechanism is returned for unknown mechanism names and invalid
// mechanism parameters.
var ErrBadMechanism = errors.New("mechanism: invalid mechanism")

// Observation carries what the ISP has measured under the schedule most
// recently in force. Backends that plan purely from the declared
// scenario ignore it; a nil Observation is always legal (first day).
type Observation struct {
	// Usage[i] is the realized per-period aggregate usage, in the
	// scenario's demand units.
	Usage []float64
}

// Pricer plans one day's price/reward surface from a scenario and an
// optional observed profile. Implementations may keep state across days
// (e.g. warm starts); a Pricer is not safe for concurrent use unless
// documented otherwise.
type Pricer interface {
	// Name returns the registry name of the mechanism.
	Name() string
	// PlanDay returns the per-period reward schedule (len ==
	// scn.Periods, each entry in [0, min(MaxSlope, NormReward)]).
	PlanDay(scn *core.Scenario, obs *Observation) ([]float64, error)
}

// Window names a set of periods sharing one multiplier — the wanctl
// time-of-day config idiom (windows × multipliers, link-agnostic).
// Periods are 1-based, matching the paper's period numbering.
type Window struct {
	Name       string
	Periods    []int
	Multiplier float64
}

// Params parameterizes mechanism construction; each backend documents
// which fields it reads. The zero value selects every default.
type Params struct {
	// Dynamic makes "tdp" plan with the carry-over dynamic model.
	Dynamic bool
	// Budget is the fixed daily rebate budget for "rebate" in money
	// units; 0 derives it as BudgetFraction of the TIP cost.
	Budget float64
	// BudgetFraction is the TIP-cost fraction used when Budget is 0
	// (default 0.5).
	BudgetFraction float64
	// Gamma is the "reverse" aggressiveness: the slack-to-reward gain
	// (default 1).
	Gamma float64
	// Rounds caps the "reverse" fixed-point iterations (default 16).
	Rounds int
	// Windows is the "static-tod" time-of-day surface.
	Windows []Window
	// DefaultMultiplier is the "static-tod" multiplier outside every
	// window (default 0: no reward off-window).
	DefaultMultiplier float64
}

// Factory builds a Pricer from parameters.
type Factory func(p Params) (Pricer, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{} // guarded by registryMu
)

// Register makes a mechanism constructible by name; it overwrites any
// previous factory under the same name. The built-in zoo registers
// itself at init.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// Names returns the registered mechanism names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New constructs the named mechanism.
func New(name string, p Params) (Pricer, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown pricer %q (have %s): %w",
			name, strings.Join(Names(), ", "), ErrBadMechanism)
	}
	return f(p)
}

// maxReward is the common reward cap every backend plans under: the
// smaller of the maximum marginal over-capacity cost (the ISP never
// rationally pays more than its marginal benefit, Appendix C) and the
// normalization reward (beyond which every deferrable session already
// defers).
func maxReward(scn *core.Scenario) float64 {
	if m := scn.Cost.MaxSlope(); m < scn.NormReward() {
		return m
	}
	return scn.NormReward()
}

// checkScenario validates the scenario once on behalf of a backend.
func checkScenario(scn *core.Scenario) error {
	if scn == nil {
		return fmt.Errorf("nil scenario: %w", ErrBadMechanism)
	}
	if err := scn.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}
