package mechanism

import (
	"fmt"
	"math"

	"tdp/internal/core"
)

func init() {
	Register("static-tod", func(p Params) (Pricer, error) { return NewStaticTOD(p) })
}

// StaticTOD is static time-of-day multiplier pricing: a fixed reward
// surface declared as windows × multipliers over the day, the wanctl
// Phase-2B config idiom (the controller does not need to know *why* a
// deployment rewards those hours — it just applies the multiplier).
// Rewards are multiples of the scenario's common reward cap: period i
// pays Multiplier·maxReward inside its window and
// DefaultMultiplier·maxReward outside every window. Demand-insensitive
// by construction — the schedule never reacts to observations, which is
// exactly what makes it cheap to operate and the natural foil for the
// optimizing mechanisms.
type StaticTOD struct {
	windows []Window
	def     float64
}

// NewStaticTOD validates the window set: multipliers in [0, 1], 1-based
// period lists non-empty. (Period upper bounds are checked at plan time,
// when the scenario's n is known; overlapping windows resolve
// first-match-wins, like wanctl's first matching window.)
func NewStaticTOD(p Params) (*StaticTOD, error) {
	if p.DefaultMultiplier < 0 || p.DefaultMultiplier > 1 {
		return nil, fmt.Errorf("static-tod default multiplier %v outside [0, 1]: %w",
			p.DefaultMultiplier, ErrBadMechanism)
	}
	for wi, w := range p.Windows {
		if w.Multiplier < 0 || w.Multiplier > 1 || math.IsNaN(w.Multiplier) {
			return nil, fmt.Errorf("static-tod window %d (%q) multiplier %v outside [0, 1]: %w",
				wi, w.Name, w.Multiplier, ErrBadMechanism)
		}
		if len(w.Periods) == 0 {
			return nil, fmt.Errorf("static-tod window %d (%q) has no periods: %w", wi, w.Name, ErrBadMechanism)
		}
		for _, q := range w.Periods {
			if q < 1 {
				return nil, fmt.Errorf("static-tod window %d (%q) period %d (periods are 1-based): %w",
					wi, w.Name, q, ErrBadMechanism)
			}
		}
	}
	st := &StaticTOD{def: p.DefaultMultiplier}
	for _, w := range p.Windows {
		st.windows = append(st.windows, Window{
			Name:       w.Name,
			Periods:    append([]int(nil), w.Periods...),
			Multiplier: w.Multiplier,
		})
	}
	return st, nil
}

// Name implements Pricer.
func (s *StaticTOD) Name() string { return "static-tod" }

// PlanDay implements Pricer by stamping the multiplier surface onto the
// scenario's reward cap. A fully unconfigured StaticTOD (no windows, no
// default multiplier) self-configures from the scenario's declared
// demand via SlackWindows at 0.8 — so `static-tod` with empty Params is
// a usable baseline, not an all-zero surface.
func (s *StaticTOD) PlanDay(scn *core.Scenario, _ *Observation) ([]float64, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	windows := s.windows
	if len(windows) == 0 && s.def == 0 {
		windows = SlackWindows(scn, 0.8)
	}
	maxR := maxReward(scn)
	p := make([]float64, scn.Periods)
	set := make([]bool, scn.Periods)
	for i := range p {
		p[i] = s.def * maxR
	}
	for wi, w := range windows {
		for _, q := range w.Periods {
			if q > scn.Periods {
				return nil, fmt.Errorf("static-tod window %d (%q) period %d beyond the %d-period day: %w",
					wi, w.Name, q, scn.Periods, ErrBadMechanism)
			}
			if !set[q-1] { // first matching window wins
				set[q-1] = true
				p[q-1] = w.Multiplier * maxR
			}
		}
	}
	return p, nil
}

// SlackWindows derives a sensible default time-of-day surface from the
// declared demand: every period whose TIP demand sits below capacity
// (slack — an off-peak trough worth filling) joins one "off-peak"
// window at the given multiplier. When no period or every period has
// slack, the below-median-demand half of the day is used instead, so
// the surface always distinguishes peak from trough. This is what the
// mechanism matrix uses when a config declares no explicit windows.
func SlackWindows(scn *core.Scenario, multiplier float64) []Window {
	totals := scn.TotalDemand()
	var periods []int
	for i, x := range totals {
		if x < scn.Capacity[i] {
			periods = append(periods, i+1)
		}
	}
	if len(periods) == 0 || len(periods) == scn.Periods {
		med := median(totals)
		periods = periods[:0]
		for i, x := range totals {
			if x < med {
				periods = append(periods, i+1)
			}
		}
	}
	if len(periods) == 0 {
		return nil
	}
	return []Window{{Name: "off-peak", Periods: periods, Multiplier: multiplier}}
}

// median returns the middle order statistic (lower of the two for even
// lengths, so a flat profile yields an empty below-median set).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: n ≤ a few hundred periods
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[(len(s)-1)/2]
}
