package mechanism

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"tdp/internal/core"
)

// testScenario is a small scenario with a pronounced peak (periods 1–2
// over capacity) and deep troughs, so every mechanism has something to
// do.
func testScenario() *core.Scenario {
	return &core.Scenario{
		Periods: 6,
		Demand: [][]float64{
			{14, 10}, {12, 9}, {4, 3}, {2, 2}, {3, 2}, {8, 6},
		},
		Betas:    []float64{1, 3},
		Capacity: []float64{18, 18, 18, 18, 18, 18},
		Cost:     core.LinearCost(3),
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"none", "rebate", "reverse", "static-tod", "tdp"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestNewUnknown(t *testing.T) {
	_, err := New("auction", Params{})
	if !errors.Is(err, ErrBadMechanism) {
		t.Fatalf("New(auction) err = %v, want ErrBadMechanism", err)
	}
}

func TestEveryBackendPlansWithinBounds(t *testing.T) {
	scn := testScenario()
	maxR := maxReward(scn)
	for _, name := range Names() {
		p, err := New(name, Params{Windows: SlackWindows(scn, 0.5)})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		rewards, err := p.PlanDay(scn, nil)
		if err != nil {
			t.Fatalf("%s.PlanDay: %v", name, err)
		}
		if len(rewards) != scn.Periods {
			t.Fatalf("%s planned %d rewards, want %d", name, len(rewards), scn.Periods)
		}
		for i, r := range rewards {
			if math.IsNaN(r) || r < 0 || r > maxR*(1+1e-9) {
				t.Fatalf("%s reward[%d] = %v outside [0, %v]", name, i, r, maxR)
			}
		}
		if _, err := Evaluate(name, scn, rewards); err != nil {
			t.Fatalf("Evaluate(%s): %v", name, err)
		}
	}
}

func TestNonePlansZeros(t *testing.T) {
	scn := testScenario()
	rewards, err := None{}.PlanDay(scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rewards {
		if r != 0 {
			t.Fatalf("none reward[%d] = %v, want 0", i, r)
		}
	}
	out, err := Evaluate("none", scn, rewards)
	if err != nil {
		t.Fatal(err)
	}
	if out.ISPCost != out.TIPCost {
		t.Fatalf("none ISP cost %v != TIP cost %v", out.ISPCost, out.TIPCost)
	}
	if out.RewardOutlay != 0 || out.UserWelfare != 0 {
		t.Fatalf("none outlay %v welfare %v, want 0", out.RewardOutlay, out.UserWelfare)
	}
}

func TestTDPBeatsEveryOtherMechanism(t *testing.T) {
	// The paper's optimizer minimizes exactly the ISP cost Evaluate
	// reports, so no other backend may beat it on its own objective.
	scn := testScenario()
	tdp, err := PlanAndEvaluate(NewTDP(Params{}), scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tdp.ISPCost >= tdp.TIPCost {
		t.Fatalf("tdp cost %v did not improve on TIP %v", tdp.ISPCost, tdp.TIPCost)
	}
	for _, name := range []string{"none", "static-tod", "rebate", "reverse"} {
		p, err := New(name, Params{Windows: SlackWindows(scn, 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		out, err := PlanAndEvaluate(p, scn, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.ISPCost < tdp.ISPCost-1e-6 {
			t.Fatalf("%s ISP cost %v beats the optimizer's %v", name, out.ISPCost, tdp.ISPCost)
		}
	}
}

func TestTDPWarmStartsSecondDay(t *testing.T) {
	scn := testScenario()
	p := NewTDP(Params{})
	first, err := p.PlanDay(scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.PlanDay(scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if math.Abs(first[i]-second[i]) > 1e-6 {
			t.Fatalf("warm replan moved reward[%d]: %v -> %v", i, first[i], second[i])
		}
	}
	if p.LastPricing() == nil {
		t.Fatal("LastPricing nil after PlanDay")
	}
}

func TestStaticTODSurface(t *testing.T) {
	scn := testScenario()
	p, err := NewStaticTOD(Params{
		Windows: []Window{
			{Name: "night", Periods: []int{3, 4}, Multiplier: 1},
			{Name: "shoulder", Periods: []int{4, 5}, Multiplier: 0.25}, // 4 overlaps: first wins
		},
		DefaultMultiplier: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rewards, err := p.PlanDay(scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxR := maxReward(scn)
	want := []float64{0.1 * maxR, 0.1 * maxR, maxR, maxR, 0.25 * maxR, 0.1 * maxR}
	if !reflect.DeepEqual(rewards, want) {
		t.Fatalf("surface = %v, want %v", rewards, want)
	}
}

func TestStaticTODRejectsBadWindows(t *testing.T) {
	cases := []Params{
		{Windows: []Window{{Periods: []int{1}, Multiplier: 1.5}}},
		{Windows: []Window{{Periods: []int{0}, Multiplier: 0.5}}},
		{Windows: []Window{{Periods: nil, Multiplier: 0.5}}},
		{DefaultMultiplier: -0.1},
	}
	for i, p := range cases {
		if _, err := NewStaticTOD(p); !errors.Is(err, ErrBadMechanism) {
			t.Fatalf("case %d: err = %v, want ErrBadMechanism", i, err)
		}
	}
	// Out-of-range period is caught at plan time, once n is known.
	p, err := NewStaticTOD(Params{Windows: []Window{{Periods: []int{7}, Multiplier: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlanDay(testScenario(), nil); !errors.Is(err, ErrBadMechanism) {
		t.Fatalf("plan with period 7 of 6: err = %v, want ErrBadMechanism", err)
	}
}

func TestRebateSpendsItsBudget(t *testing.T) {
	scn := testScenario()
	const budget = 2.0
	p, err := NewRebate(Params{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PlanAndEvaluate(p, scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.RewardOutlay-budget) > 1e-6*budget {
		t.Fatalf("outlay %v, want the fixed budget %v", out.RewardOutlay, budget)
	}
	// Congested periods must not be rewarded: the slack shape zeroes them.
	totals := scn.TotalDemand()
	for i, r := range out.Rewards {
		if totals[i] > scn.Capacity[i] && r != 0 {
			t.Fatalf("congested period %d rewarded %v", i+1, r)
		}
	}
}

func TestRebateBudgetCeiling(t *testing.T) {
	// A budget beyond the capped surface's outlay is returned unspent:
	// the schedule pins at the cap instead of chasing the budget.
	scn := testScenario()
	p, err := NewRebate(Params{Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PlanAndEvaluate(p, scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxR := maxReward(scn)
	var atCap int
	for _, r := range out.Rewards {
		if math.Abs(r-maxR) < 1e-9 {
			atCap++
		}
	}
	if atCap == 0 {
		t.Fatalf("no reward at the cap under an unspendable budget: %v", out.Rewards)
	}
	if out.RewardOutlay >= 1e9 {
		t.Fatalf("outlay %v chased the unspendable budget", out.RewardOutlay)
	}
}

func TestRebateDefaultBudgetFraction(t *testing.T) {
	scn := testScenario()
	p, err := NewRebate(Params{}) // budget 0 → half the TIP cost
	if err != nil {
		t.Fatal(err)
	}
	out, err := PlanAndEvaluate(p, scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * model.TIPCost()
	if math.Abs(out.RewardOutlay-want) > 1e-6*want {
		t.Fatalf("outlay %v, want %v (half the TIP cost)", out.RewardOutlay, want)
	}
}

func TestReverseRewardsOnlyTroughs(t *testing.T) {
	scn := testScenario()
	p, err := NewReverse(Params{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PlanAndEvaluate(p, scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The deepest trough (period 4: demand 4 of 18) must out-earn the
	// heaviest peak (period 1: demand 24 of 18) at equilibrium — note
	// the peak may still earn *something*: deferral away from it opens
	// slack there too.
	if out.Rewards[3] <= out.Rewards[0] {
		t.Fatalf("deepest trough reward %v not above peak reward %v: %v",
			out.Rewards[3], out.Rewards[0], out.Rewards)
	}
	// Equilibrium usage must be less congested than TIP.
	if out.Overflow <= 0 {
		t.Skip("scenario produced no TIP overflow") // guard: testScenario overflows by construction
	}
	none, err := Evaluate("none", scn, make([]float64, scn.Periods))
	if err != nil {
		t.Fatal(err)
	}
	if out.Overflow >= none.Overflow {
		t.Fatalf("reverse overflow %v did not improve on TIP %v", out.Overflow, none.Overflow)
	}
}

func TestReverseFixedPointSelfConsistent(t *testing.T) {
	// At the converged plan, the posted reward must equal the reward the
	// resulting usage profile would post: p = clamp(γ·P·slack/A).
	scn := testScenario()
	r, err := NewReverse(Params{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.PlanDay(scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		t.Fatal(err)
	}
	x := model.UsageAt(p)
	maxR := maxReward(scn)
	for i := range p {
		target := 0.0
		if slack := scn.Capacity[i] - x[i]; slack > 0 {
			target = math.Min(scn.NormReward()*slack/scn.Capacity[i], maxR)
		}
		if math.Abs(p[i]-target) > 1e-6 {
			t.Fatalf("period %d: posted %v, self-consistent target %v", i+1, p[i], target)
		}
	}
}

func TestEvaluateAccountingIdentities(t *testing.T) {
	scn := testScenario()
	p, err := New("tdp", Params{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PlanAndEvaluate(p, scn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.RewardOutlay + out.CongestionCost; math.Abs(got-out.ISPCost) > 1e-9*(1+out.ISPCost) {
		t.Fatalf("outlay %v + congestion %v != ISP cost %v", out.RewardOutlay, out.CongestionCost, out.ISPCost)
	}
	if out.UserWelfare != out.RewardOutlay/2 {
		t.Fatalf("welfare %v != outlay/2 %v", out.UserWelfare, out.RewardOutlay/2)
	}
	if out.Savings() <= 0 {
		t.Fatalf("tdp savings %v, want > 0", out.Savings())
	}
}

func TestEvaluateRejectsBadSurfaces(t *testing.T) {
	scn := testScenario()
	bad := [][]float64{
		{0, 0, 0},                       // wrong length
		{0, 0, 0, 0, 0, -1},             // negative
		{0, 0, 0, 0, 0, math.NaN()},     // NaN
		{0, 0, 0, 0, 0, scn.NormReward() * 2}, // beyond the model's validity
	}
	for i, p := range bad {
		if _, err := Evaluate("x", scn, p); !errors.Is(err, ErrBadMechanism) {
			t.Fatalf("case %d: err = %v, want ErrBadMechanism", i, err)
		}
	}
}

func TestSlackWindows(t *testing.T) {
	scn := testScenario()
	ws := SlackWindows(scn, 0.5)
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1", len(ws))
	}
	// Periods 1 (24) and 2 (21) exceed capacity 18; 3–6 have slack.
	if want := []int{3, 4, 5, 6}; !reflect.DeepEqual(ws[0].Periods, want) {
		t.Fatalf("off-peak periods %v, want %v", ws[0].Periods, want)
	}
	if ws[0].Multiplier != 0.5 {
		t.Fatalf("multiplier %v, want 0.5", ws[0].Multiplier)
	}

	// All-slack scenario falls back to below-median periods.
	flat := testScenario()
	for i := range flat.Capacity {
		flat.Capacity[i] = 100
	}
	ws = SlackWindows(flat, 0.25)
	if len(ws) != 1 || len(ws[0].Periods) == 0 || len(ws[0].Periods) == flat.Periods {
		t.Fatalf("all-slack fallback windows = %+v", ws)
	}
}

func TestObservationShiftsRebateAndReverse(t *testing.T) {
	// Feeding an observed profile that flips which periods have slack
	// must move where the rewards land.
	scn := testScenario()
	obs := &Observation{Usage: []float64{2, 2, 25, 25, 25, 2}} // troughs now at 1, 2, 6
	for _, name := range []string{"rebate", "reverse"} {
		p, err := New(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.PlanDay(scn, nil)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := New(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := p2.PlanDay(scn, obs)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(cold, warm) {
			t.Fatalf("%s ignored the observed profile: %v", name, cold)
		}
		if warm[0] == 0 {
			t.Fatalf("%s did not reward observed trough period 1: %v", name, warm)
		}
	}
}
