package mechanism

import (
	"fmt"
	"math"

	"tdp/internal/core"
)

func init() {
	Register("rebate", func(p Params) (Pricer, error) { return NewRebate(p) })
}

// Rebate is the fixed-budget rebate mechanism of Loiseau et al.
// ("Incentive Mechanisms for Internet Congestion Management:
// Fixed-Budget Rebate versus Time-of-Day Pricing"): the provider
// commits to returning a *fixed* total amount per day and distributes
// it to users who shift consumption into uncongested periods, so its
// total exposure is known in advance — the property the paper argues
// makes the mechanism robust to demand-forecast errors, in contrast to
// time-of-day pricing whose outlay floats with realized demand.
//
// In this model family the commitment becomes: pick a per-period reward
// surface shaped by slack (capacity minus demand, the value of filling
// each trough), then scale the whole surface so the induced outlay
// Σ_i p_i·In_i(p) — what the ISP actually pays under the §II reaction
// model — meets the budget exactly. The outlay is continuous and
// increasing in the surface scale, so a bisection pins it; when even
// the capped surface cannot spend the budget (every reward at the cap),
// the capped surface is returned and the leftover stays unspent.
type Rebate struct {
	budget float64
	frac   float64
}

// NewRebate validates the budget parameters: Params.Budget is the fixed
// daily budget in money units (0 derives it from the TIP cost), and
// Params.BudgetFraction is that derivation's fraction (default 0.5 —
// commit half of what congestion costs today).
func NewRebate(p Params) (*Rebate, error) {
	if p.Budget < 0 || math.IsNaN(p.Budget) || math.IsInf(p.Budget, 0) {
		return nil, fmt.Errorf("rebate budget %v: %w", p.Budget, ErrBadMechanism)
	}
	if p.BudgetFraction < 0 || p.BudgetFraction > 1 || math.IsNaN(p.BudgetFraction) {
		return nil, fmt.Errorf("rebate budget fraction %v outside [0, 1]: %w", p.BudgetFraction, ErrBadMechanism)
	}
	frac := p.BudgetFraction
	if frac == 0 {
		frac = 0.5
	}
	return &Rebate{budget: p.Budget, frac: frac}, nil
}

// Name implements Pricer.
func (r *Rebate) Name() string { return "rebate" }

// PlanDay implements Pricer. The slack shape uses the observed usage
// profile when one is supplied (the rebate follows where load actually
// sits), falling back to the declared TIP demand on the first day.
func (r *Rebate) PlanDay(scn *core.Scenario, obs *Observation) ([]float64, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, fmt.Errorf("rebate plan: %w", err)
	}
	n := scn.Periods
	load := scn.TotalDemand()
	if obs != nil && len(obs.Usage) == n {
		load = obs.Usage
	}

	// Slack shape, normalized to peak 1: the deepest trough earns the
	// full scaled reward, shallower troughs proportionally less, and
	// congested periods nothing (paying users to move *into* an
	// over-capacity period only buys more congestion).
	shape := make([]float64, n)
	var peak float64
	for i := range shape {
		if s := scn.Capacity[i] - load[i]; s > 0 {
			shape[i] = s
			if s > peak {
				peak = s
			}
		}
	}
	if peak == 0 {
		// Every period congested: nowhere worth paying users to move to.
		return make([]float64, n), nil
	}
	for i := range shape {
		shape[i] /= peak
	}

	budget := r.budget
	if budget == 0 {
		budget = r.frac * model.TIPCost()
	}
	if budget == 0 {
		// No congestion under TIP: nothing to rebate against.
		return make([]float64, n), nil
	}

	maxR := maxReward(scn)
	surface := func(scale float64) []float64 {
		p := make([]float64, n)
		for i, s := range shape {
			p[i] = math.Min(scale*s, maxR)
		}
		return p
	}
	outlayAt := func(scale float64) float64 {
		return model.RewardOutlayAt(surface(scale))
	}

	// The capped surface is the spend ceiling; if the budget exceeds it,
	// return it and leave the rest unspent (the fixed budget is a
	// commitment ceiling, not an obligation to burn).
	if outlayAt(maxR) <= budget {
		return surface(maxR), nil
	}
	lo, hi := 0.0, maxR
	for iter := 0; iter < 64; iter++ {
		mid := 0.5 * (lo + hi)
		if outlayAt(mid) < budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return surface(0.5 * (lo + hi)), nil
}
