package mechanism

import (
	"fmt"
	"math"

	"tdp/internal/core"
)

// Outcome scores one mechanism's day plan under the common §II static
// reaction model, so rows from different mechanisms are directly
// comparable: same scenario, same user behavior, only the reward
// surface differs.
type Outcome struct {
	// Mechanism is the registry name of the backend that planned.
	Mechanism string
	// Rewards is the planned per-period reward surface.
	Rewards []float64
	// Usage is the per-period aggregate usage the surface induces.
	Usage []float64
	// ISPCost is the provider's total daily cost: RewardOutlay plus
	// CongestionCost (the paper's objective (1)).
	ISPCost float64
	// TIPCost is the cost with no rewards offered — the "none" row's
	// ISPCost, repeated on every row so Δ is local.
	TIPCost float64
	// RewardOutlay is the rewards actually paid, Σ_i p_i·In_i.
	RewardOutlay float64
	// CongestionCost is Σ_i f(x_i − A_i).
	CongestionCost float64
	// UserWelfare is the aggregate user surplus gained over TIP. Under
	// the §II waiting family the deferral threshold of the marginal
	// deferrer is uniformly distributed up to each type's patience
	// bound, so surplus integrates to exactly half the outlay:
	// Σ q·p/2 = RewardOutlay/2 (see DESIGN.md §15).
	UserWelfare float64
	// Overflow is the total volume above capacity, Σ_i max(x_i − A_i, 0),
	// in the scenario's demand units — congestion in traffic terms,
	// independent of the cost function's scale.
	Overflow float64
	// OverflowPeriods counts periods with x_i > A_i.
	OverflowPeriods int
}

// Savings is the relative ISP-cost reduction vs TIP (0.24 = 24%).
func (o *Outcome) Savings() float64 {
	if o.TIPCost == 0 {
		return 0
	}
	return (o.TIPCost - o.ISPCost) / o.TIPCost
}

// Evaluate scores a reward surface for the scenario under the static
// reaction model. The surface must be day-shaped, finite, non-negative,
// and within the scenario's normalization reward — beyond it the
// waiting-function family stops being meaningful (every deferrable
// session is already deferring), so a surface out there is a mechanism
// bug, not a bolder plan.
func Evaluate(name string, scn *core.Scenario, rewards []float64) (*Outcome, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	if len(rewards) != scn.Periods {
		return nil, fmt.Errorf("%s: %d rewards for %d periods: %w",
			name, len(rewards), scn.Periods, ErrBadMechanism)
	}
	const slack = 1e-9 // absorb cap-boundary roundoff from bisection/fixed-point plans
	bound := scn.NormReward() * (1 + slack)
	for i, p := range rewards {
		if math.IsNaN(p) || p < 0 || p > bound {
			return nil, fmt.Errorf("%s: reward %v in period %d outside [0, %v]: %w",
				name, p, i+1, scn.NormReward(), ErrBadMechanism)
		}
	}
	model, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", name, err)
	}
	p := append([]float64(nil), rewards...)
	out := &Outcome{
		Mechanism:    name,
		Rewards:      p,
		Usage:        model.UsageAt(p),
		ISPCost:      model.CostAt(p),
		TIPCost:      model.TIPCost(),
		RewardOutlay: model.RewardOutlayAt(p),
	}
	out.CongestionCost = out.ISPCost - out.RewardOutlay
	out.UserWelfare = out.RewardOutlay / 2
	for i, x := range out.Usage {
		if over := x - scn.Capacity[i]; over > 0 {
			out.Overflow += over
			out.OverflowPeriods++
		}
	}
	return out, nil
}

// PlanAndEvaluate runs one mechanism end to end for the scenario:
// PlanDay under the optional observation, then Evaluate of the surface
// it produced.
func PlanAndEvaluate(p Pricer, scn *core.Scenario, obs *Observation) (*Outcome, error) {
	rewards, err := p.PlanDay(scn, obs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name(), err)
	}
	return Evaluate(p.Name(), scn, rewards)
}
