package mechanism

import (
	"fmt"

	"tdp/internal/core"
	"tdp/internal/optimize"
)

func init() {
	Register("tdp", func(p Params) (Pricer, error) { return NewTDP(p), nil })
	Register("none", func(Params) (Pricer, error) { return None{}, nil })
}

// TDP is the paper's reward optimizer as a zoo backend: a full
// cost-minimizing solve of the §II static model (or the §III-A dynamic
// model) per day — the same plan path tube.Controller runs. Across days
// it warm-starts from its previous schedule, which truncates the
// smoothing homotopy exactly like the controller's warm path.
//
// The observed profile is ignored: under the Fig. 1 loop, observations
// reach the optimizer through the re-estimated scenario (demand and
// patience beliefs), not through the plan call.
type TDP struct {
	dynamic bool
	warm    []float64
	last    *core.Pricing
}

// NewTDP builds the paper's optimizer backend; Params.Dynamic selects
// the carry-over model.
func NewTDP(p Params) *TDP { return &TDP{dynamic: p.Dynamic} }

// Name implements Pricer.
func (t *TDP) Name() string { return "tdp" }

// PlanDay implements Pricer with a full offline solve.
func (t *TDP) PlanDay(scn *core.Scenario, _ *Observation) ([]float64, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	var opts []optimize.Option
	if len(t.warm) == scn.Periods {
		opts = append(opts, optimize.WithWarmStart(t.warm))
	}
	var (
		pr  *core.Pricing
		err error
	)
	if t.dynamic {
		var m *core.DynamicModel
		if m, err = core.NewDynamicModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	} else {
		var m *core.StaticModel
		if m, err = core.NewStaticModel(scn); err == nil {
			pr, err = m.Solve(opts...)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tdp plan: %w", err)
	}
	t.warm = append(t.warm[:0], pr.Rewards...)
	t.last = pr
	return append([]float64(nil), pr.Rewards...), nil
}

// LastPricing returns the full solver result of the most recent
// PlanDay (nil before the first), for callers that want the solver's
// own cost accounting next to Evaluate's.
func (t *TDP) LastPricing() *core.Pricing { return t.last }

// None is the TIP baseline: no rewards, ever. It pins the matrix's
// "do nothing" row so every other mechanism's Δ is read off directly.
type None struct{}

// Name implements Pricer.
func (None) Name() string { return "none" }

// PlanDay implements Pricer with the all-zero schedule.
func (None) PlanDay(scn *core.Scenario, _ *Observation) ([]float64, error) {
	if err := checkScenario(scn); err != nil {
		return nil, err
	}
	return make([]float64, scn.Periods), nil
}
