package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/core"
	"tdp/internal/tube"
)

// LoopResult traces the full Fig. 1 control loop across days: publish →
// users react → measure → re-profile → re-price.
type LoopResult struct {
	// TrueBetas is the population's actual per-class patience.
	TrueBetas []float64
	// BetasByDay[d] is the ISP's estimate after day d+1.
	BetasByDay [][]float64
	// CongestionByDay is the realized per-day congestion cost.
	CongestionByDay []float64
	// TIPCongestion is the no-TDP baseline.
	TIPCongestion float64
}

// Loop runs four days of the closed loop on a 12-period, 3-class
// deployment where the ISP starts from an uninformative patience prior
// and the population reacts with the true (hidden) waiting functions.
func Loop() (*LoopResult, error) {
	trueBetas := []float64{4, 1.5, 0.5} // web, ftp, video
	base := []float64{22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26}
	demand := make([][]float64, 12)
	for i := range demand {
		demand[i] = []float64{base[i] * 0.2, base[i] * 0.3, base[i] * 0.5}
	}
	capacity := constant(12, 18)
	cost := core.LinearCost(3)

	truthScn := &core.Scenario{
		Periods: 12, Demand: demand, Betas: trueBetas,
		Capacity: capacity, Cost: cost,
	}
	truth, err := core.NewStaticModel(truthScn)
	if err != nil {
		return nil, err
	}

	ctrl, err := tube.NewController(tube.ControllerConfig{
		Demand:       demand,
		Classes:      []string{"web", "ftp", "video"},
		InitialBetas: []float64{2.5, 2.5, 2.5},
		Capacity:     capacity,
		Cost:         cost,
	})
	if err != nil {
		return nil, err
	}

	res := &LoopResult{TrueBetas: trueBetas}
	for i, x := range truthScn.TotalDemand() {
		res.TIPCongestion += cost.Value(x - capacity[i])
	}
	react := func(rewards []float64) ([][]float64, error) {
		return truth.UsageByType(rewards), nil
	}
	for day := 0; day < 4; day++ {
		rep, err := ctrl.RunDay(react)
		if err != nil {
			return nil, fmt.Errorf("day %d: %w", day+1, err)
		}
		res.BetasByDay = append(res.BetasByDay, rep.Betas)
		res.CongestionByDay = append(res.CongestionByDay, rep.CongestionCost)
	}
	return res, nil
}

// Render formats the result.
func (r *LoopResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 1 control loop — profiling feedback across days\n")
	fmt.Fprintf(&sb, "  true patience (web, ftp, video): %.2f\n", r.TrueBetas)
	for d, betas := range r.BetasByDay {
		fmt.Fprintf(&sb, "  day %d: estimate %.2f, congestion %.1f\n",
			d+1, betas, r.CongestionByDay[d])
	}
	fmt.Fprintf(&sb, "  TIP congestion baseline: %.1f\n", r.TIPCongestion)
	sb.WriteString("  (estimates start flat at 2.50 and recover the true ordering)\n")
	return sb.String()
}
