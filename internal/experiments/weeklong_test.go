package experiments

import (
	"strings"
	"testing"
)

func TestWeekLong(t *testing.T) {
	r, err := WeekLong(4)
	if err != nil {
		t.Fatalf("WeekLong: %v", err)
	}
	if len(r.BetasByDay) != 4 || len(r.MovedByDay) != 4 {
		t.Fatalf("day accounting: %d betas, %d moved", len(r.BetasByDay), len(r.MovedByDay))
	}
	// Users actually defer every day.
	for d, m := range r.MovedByDay {
		if m <= 0 {
			t.Errorf("day %d moved nothing", d+1)
		}
	}
	// TDP shaves the TIP peak on (at least) the later, better-informed
	// days. The emulated users are magnitude-sensitive while the ISP
	// models them as normalized — exactly the §IV error regime — so a
	// loose criterion: the mean TDP peak sits below the TIP peak.
	var meanPeak float64
	for _, p := range r.PeakOfferedByDay {
		meanPeak += p
	}
	meanPeak /= float64(len(r.PeakOfferedByDay))
	if meanPeak >= r.TIPPeakOffered {
		t.Errorf("mean TDP peak %v not below TIP peak %v", meanPeak, r.TIPPeakOffered)
	}
	// Re-profiling happened: estimates moved off the flat prior. (They
	// are *effective* parameters under session noise — see the type
	// comment — so no per-class ordering is asserted here; the Loop
	// experiment covers identification at fluid scale.)
	final := r.BetasByDay[len(r.BetasByDay)-1]
	moved := false
	for _, b := range final {
		if b != 2.5 {
			moved = true
		}
	}
	if !moved {
		t.Errorf("patience estimates never updated: %v", final)
	}
	if !strings.Contains(r.Render(), "Week-long") {
		t.Error("Render missing header")
	}
}

func TestWeekLongDefaultDays(t *testing.T) {
	r, err := WeekLong(0)
	if err != nil {
		t.Fatalf("WeekLong: %v", err)
	}
	if r.Days != 5 {
		t.Errorf("default days = %d, want 5", r.Days)
	}
}
