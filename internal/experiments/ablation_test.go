package experiments

import (
	"strings"
	"testing"
)

func TestTwoPeriod(t *testing.T) {
	r, err := TwoPeriod()
	if err != nil {
		t.Fatalf("TwoPeriod: %v", err)
	}
	// Sanity: both schemes beat TIP; neither goes negative.
	if !(r.TwoPeriodCost < r.TIPCost) {
		t.Errorf("2-period cost %v not below TIP %v", r.TwoPeriodCost, r.TIPCost)
	}
	// The §I claim: multi-period TDP strictly dominates the day/night
	// scheme, and by a meaningful margin on a day with several peaks.
	if !(r.MultiPeriodCost < r.TwoPeriodCost) {
		t.Errorf("multi-period cost %v not below 2-period %v",
			r.MultiPeriodCost, r.TwoPeriodCost)
	}
	gain := (r.TwoPeriodCost - r.MultiPeriodCost) / r.TIPCost
	if gain < 0.03 {
		t.Errorf("multi-period advantage only %.1f%% of TIP cost — inadequacy claim not visible", 100*gain)
	}
	if r.OffPeakPeriods == 0 || r.OffPeakPeriods == 48 {
		t.Errorf("degenerate off-peak classification: %d", r.OffPeakPeriods)
	}
	if r.TwoPeriodReward <= 0 {
		t.Error("2-period scheme found no useful reward")
	}
	if !strings.Contains(r.Render(), "2-period") {
		t.Error("Render missing header")
	}
}

func TestCapAdjusted(t *testing.T) {
	r, err := CapAdjusted()
	if err != nil {
		t.Fatalf("CapAdjusted: %v", err)
	}
	if len(r.Available) != 48 {
		t.Fatalf("available has %d periods", len(r.Available))
	}
	// The evening squeeze must show in the plan.
	if !(r.Available[40] < r.Available[4]) {
		t.Errorf("evening capacity %v not below morning %v", r.Available[40], r.Available[4])
	}
	// Optimizing against the wrong (constant) capacity looks cheaper on
	// paper but performs worse on the true time-varying capacity than
	// the correctly informed optimum.
	if !(r.ConstantCost < r.EvalConstOnAdjusted) {
		t.Errorf("constant-A plan cannot cost less on the harder true capacity: %v vs %v",
			r.ConstantCost, r.EvalConstOnAdjusted)
	}
	if !(r.AdjustedCost <= r.EvalConstOnAdjusted+1e-9) {
		t.Errorf("informed optimum %v worse than misinformed schedule %v",
			r.AdjustedCost, r.EvalConstOnAdjusted)
	}
}
