package experiments

import (
	"context"
	"fmt"
	"strings"

	"tdp/internal/core"
	"tdp/internal/parallel"
)

// Table12Result carries the Appendix I Table XII study: optimal rewards
// for each perturbed period-1 demand.
type Table12Result struct {
	// RewardsByDemand[total] is the 12-period reward schedule when
	// period-1 demand is total×10 MBps.
	RewardsByDemand map[int][]float64
}

// Table12 solves the 12-period model for each Table XI distribution; the
// nine independent solves run across the worker pool.
func Table12() (*Table12Result, error) {
	const lo, hi = 18, 26
	rewards, err := parallel.Map(context.Background(), 0, hi-lo+1, func(i int) ([]float64, error) {
		total := lo + i
		scn, ok := Static12WithPeriod1Demand(total)
		if !ok {
			return nil, fmt.Errorf("experiments: no Table XI row for %d", total)
		}
		m, err := core.NewStaticModel(scn)
		if err != nil {
			return nil, err
		}
		pr, err := m.Solve()
		if err != nil {
			return nil, err
		}
		return pr.Rewards, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table12Result{RewardsByDemand: make(map[int][]float64, hi-lo+1)}
	for i, r := range rewards {
		res.RewardsByDemand[lo+i] = r
	}
	return res, nil
}

// Render formats the result in Table XII's layout (periods as rows).
func (r *Table12Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table XII — rewards under period-1 demand perturbation ($0.10)\n")
	sb.WriteString("  period |")
	for total := 18; total <= 26; total++ {
		fmt.Fprintf(&sb, " %5d", total*10)
	}
	sb.WriteString(" MBps\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "  %6d |", i+1)
		for total := 18; total <= 26; total++ {
			fmt.Fprintf(&sb, " %5.2f", r.RewardsByDemand[total][i])
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  (paper: p1 falls to 0 as period-1 demand grows; p2–p5 nearly flat)\n")
	return sb.String()
}

// WaitPerturbResult carries the Tables XIII–XVI robustness studies:
// optimal rewards when the ISP mis-estimates waiting functions.
type WaitPerturbResult struct {
	// Baseline is the unperturbed 12-period schedule.
	Baseline []float64
	// Period1Perturbed is the schedule with Table XIII's period-1
	// mis-estimation (Table XIV: "rewards barely change").
	Period1Perturbed []float64
	// AllPerturbed is the schedule with Table XV's all-period
	// mis-estimation (Table XVI).
	AllPerturbed []float64
	// CostNominal and CostAdjusted evaluate the all-period mis-estimation
	// case on the perturbed model: cost with the stale baseline rewards vs
	// re-optimized rewards (paper: $3.04 → $3.03 — the static model is
	// robust to waiting-function errors).
	CostNominal, CostAdjusted float64
}

// WaitPerturb runs both waiting-function mis-estimation studies. The
// baseline and the two perturbed solves are independent and run across
// the worker pool.
func WaitPerturb() (*WaitPerturbResult, error) {
	type solved struct {
		m  *core.StaticModel
		pr *core.Pricing
	}
	scenarios := []func() *core.Scenario{Static12, Static12WaitPerturbPeriod1, Static12WaitPerturbAll}
	outs, err := parallel.Map(context.Background(), 0, len(scenarios), func(i int) (solved, error) {
		m, err := core.NewStaticModel(scenarios[i]())
		if err != nil {
			return solved{}, err
		}
		pr, err := m.Solve()
		if err != nil {
			return solved{}, err
		}
		return solved{m, pr}, nil
	})
	if err != nil {
		return nil, err
	}
	base, p1, all := outs[0].pr, outs[1].pr, outs[2]
	return &WaitPerturbResult{
		Baseline:         base.Rewards,
		Period1Perturbed: p1.Rewards,
		AllPerturbed:     all.pr.Rewards,
		CostNominal:      PerUserDollars(all.m.CostAt(base.Rewards)),
		CostAdjusted:     PerUserDollars(all.pr.Cost),
	}, nil
}

// Render formats the result.
func (r *WaitPerturbResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Tables XIII–XVI — waiting-function mis-estimation robustness\n")
	renderSeries(&sb, "baseline rewards ($0.10)", r.Baseline)
	renderSeries(&sb, "period-1 perturbed (Table XIV)", r.Period1Perturbed)
	renderSeries(&sb, "all periods perturbed (Table XVI)", r.AllPerturbed)
	renderKV(&sb, "cost with stale rewards ($/user)", r.CostNominal, "3.04")
	renderKV(&sb, "cost re-optimized ($/user)", r.CostAdjusted, "3.03")
	sb.WriteString("  (paper: rewards barely change; adjustment buys almost nothing)\n")
	return sb.String()
}
