package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig3(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(r.Patient) != 11 || len(r.Impatient) != 11 {
		t.Fatalf("curve lengths %d/%d, want 11", len(r.Patient), len(r.Impatient))
	}
	// The paper's Fig. 3 shape: the impatient curve is above the patient
	// one at t = 1 and far below for long deferrals; a crossover exists.
	if !(r.Impatient[0] > r.Patient[0]) {
		t.Error("impatient curve not above patient at t=1")
	}
	last := len(r.Patient) - 1
	if !(r.Patient[last] > r.Impatient[last]) {
		t.Error("patient curve not above impatient at t=11")
	}
	if r.CrossoverDefTime <= 1 {
		t.Errorf("crossover at t=%d, want > 1", r.CrossoverDefTime)
	}
	if !strings.Contains(r.Render(), "Fig. 3") {
		t.Error("Render missing header")
	}
}

func TestFig4Fig5(t *testing.T) {
	r, err := Fig4Fig5()
	if err != nil {
		t.Fatalf("Fig4Fig5: %v", err)
	}
	// Headline shapes from §V-A.
	if math.Abs(r.TIPCostPerUser-4.26) > 1e-9 {
		t.Errorf("TIP cost per user = %v, want exactly 4.26 (Table VII data)", r.TIPCostPerUser)
	}
	if r.TDPCostPerUser >= r.TIPCostPerUser {
		t.Error("TDP not cheaper than TIP")
	}
	if r.Savings < 0.10 || r.Savings > 0.40 {
		t.Errorf("savings = %v, want within [0.10, 0.40] (paper 0.24)", r.Savings)
	}
	if r.MaxReward > 0.15+1e-6 {
		t.Errorf("max reward $%v exceeds the 0.15 bound", r.MaxReward)
	}
	if r.TDPRange >= r.TIPRange {
		t.Errorf("TDP range %v not below TIP range %v", r.TDPRange, r.TIPRange)
	}
	if r.TIPRange != 200 {
		t.Errorf("TIP range = %v MBps, want 200", r.TIPRange)
	}
	// Residue ratio: paper 472.5/923.4 ≈ 0.51. Accept [0.3, 0.8].
	ratio := r.TDPResidue / r.TIPResidue
	if ratio < 0.3 || ratio > 0.8 {
		t.Errorf("residue ratio = %v, want ≈0.5", ratio)
	}
	if r.AreaBetween <= 0 {
		t.Error("no traffic redistributed")
	}
	out := r.Render()
	for _, want := range []string{"4.26", "0.24", "923.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing paper reference %q", want)
		}
	}
}

func TestTable6(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8 (18–26 minus baseline)", len(r.Rows))
	}
	byDemand := make(map[int]Table6Row, len(r.Rows))
	for _, row := range r.Rows {
		byDemand[row.DemandMBps] = row
		// Re-optimizing can only help: cost change ≤ 0.
		if row.CostChange > 1e-6 {
			t.Errorf("demand %d: positive cost change %v", row.DemandMBps, row.CostChange)
		}
		if row.PriceChange < 0 {
			t.Errorf("demand %d: negative price change", row.DemandMBps)
		}
	}
	// Paper shape: decreasing demand moves prices much more than
	// increasing it, and the largest effect is at 180 MBps.
	if !(byDemand[180].PriceChange > byDemand[200].PriceChange) {
		t.Errorf("price change not decreasing toward baseline: 180→%v, 200→%v",
			byDemand[180].PriceChange, byDemand[200].PriceChange)
	}
	if !(byDemand[180].PriceChange > byDemand[260].PriceChange) {
		t.Errorf("decreasing demand should move prices more than increasing: %v vs %v",
			byDemand[180].PriceChange, byDemand[260].PriceChange)
	}
	if !(byDemand[180].CostChange < byDemand[240].CostChange) {
		t.Errorf("cost improvement should concentrate at low demand")
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("%d sweep points", len(r.Points))
	}
	// Residue spread decreases (weakly) in the cost scale and the drop
	// from a=0.1 to a=10 is sharp, then it plateaus (a ≥ 10).
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].ResidueSpread > r.Points[i-1].ResidueSpread+1 {
			t.Errorf("residue spread increased at a=%v: %v → %v",
				r.Points[i].Scale, r.Points[i-1].ResidueSpread, r.Points[i].ResidueSpread)
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if !(first.ResidueSpread > 1.2*last.ResidueSpread) {
		t.Errorf("no meaningful drop across the sweep: %v → %v",
			first.ResidueSpread, last.ResidueSpread)
	}
	// Plateau: a=30 vs a=100 nearly equal; never fully even (positive).
	var at30, at100 float64
	for _, p := range r.Points {
		if p.Scale == 30 {
			at30 = p.ResidueSpread
		}
		if p.Scale == 100 {
			at100 = p.ResidueSpread
		}
	}
	if math.Abs(at30-at100) > 0.15*at30 {
		t.Errorf("no plateau: a=30 %v vs a=100 %v", at30, at100)
	}
	if last.ResidueSpread <= 0 {
		t.Error("traffic fully evened out — paper says it never is")
	}
	// The paper claims demand never exceeds capacity for a ≥ 10, but its
	// own data forbids that: mean demand (≈185 MBps) exceeds capacity
	// (180 MBps), so some excess is unavoidable. The achievable floor is
	// (ΣX − n·A)⁺ spread optimally; require the optimizer to get within
	// 2× of it for a ≥ 10.
	scn := Static48()
	var total float64
	for _, x := range scn.TotalDemand() {
		total += x
	}
	floor := (total - 48*18) * 10 * 1800 / 1000 // GB
	if floor <= 0 {
		t.Fatal("scenario unexpectedly feasible")
	}
	for _, p := range r.Points {
		if p.Scale >= 10 && p.OverCapacity > 2*floor {
			t.Errorf("a=%v: %v GB over capacity, floor %v", p.Scale, p.OverCapacity, floor)
		}
	}
}

func TestFig7Fig8(t *testing.T) {
	r, err := Fig7Fig8()
	if err != nil {
		t.Fatalf("Fig7Fig8: %v", err)
	}
	if r.TDPCostPerUser >= r.TIPCostPerUser {
		t.Error("dynamic TDP not cheaper than TIP")
	}
	// Fig. 7's headline: dynamic rewards break the static P/2 barrier.
	if r.StaticMaxFrac > 0.5+1e-6 {
		t.Errorf("static max reward fraction %v exceeds 0.5", r.StaticMaxFrac)
	}
	if r.DynamicMaxFrac <= 0.5 {
		t.Errorf("dynamic max reward fraction %v does not break 0.5", r.DynamicMaxFrac)
	}
	// Fig. 8: TDP halves the offered-load residue (paper 2623→1142).
	ratio := r.TDPResidue / r.TIPResidue
	if ratio >= 0.8 {
		t.Errorf("dynamic residue ratio %v, want well below 1 (paper 0.44)", ratio)
	}
}

func TestTableX(t *testing.T) {
	r, err := TableX()
	if err != nil {
		t.Fatalf("TableX: %v", err)
	}
	if r.Period1Adjusted <= r.Period1Original {
		t.Errorf("period-1 reward did not rise: %v → %v", r.Period1Original, r.Period1Adjusted)
	}
	if r.CostAdjusted >= r.CostNominal {
		t.Errorf("online adaptation did not cut cost: %v vs %v", r.CostAdjusted, r.CostNominal)
	}
	if r.ImprovementPct <= 0 || r.ImprovementPct > 50 {
		t.Errorf("improvement %v%% implausible (paper ≈5%%)", r.ImprovementPct)
	}
}

func TestTable3(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	for i, pe := range r.MaxPercentError {
		if pe > 20 {
			t.Errorf("period %d: max error %.1f%% (paper ≤ 11.8%%)", i+1, pe)
		}
	}
	// Fig. 2: estimated and actual period-1 curves overlap closely.
	for i := range r.Fig2Actual {
		if r.Fig2Actual[i] <= 0 {
			t.Fatalf("degenerate actual curve at %d", i)
		}
		rel := math.Abs(r.Fig2Estimated[i]-r.Fig2Actual[i]) / r.Fig2Actual[i]
		if rel > 0.25 {
			t.Errorf("Fig. 2 point %d off by %.0f%%", i, 100*rel)
		}
	}
}

func TestTable12(t *testing.T) {
	r, err := Table12()
	if err != nil {
		t.Fatalf("Table12: %v", err)
	}
	if len(r.RewardsByDemand) != 9 {
		t.Fatalf("%d schedules, want 9", len(r.RewardsByDemand))
	}
	// Paper Table XII shape: the reward for deferring *to* period 1 is
	// positive while period 1 has headroom and falls monotonically to 0
	// as its demand grows (paper: 0.20 → 0; here the zero point lands at
	// 250 MBps instead of 210 — a calibration offset, same structure).
	if r.RewardsByDemand[18][0] <= 0 {
		t.Errorf("p1 at demand 180 = %v, want > 0", r.RewardsByDemand[18][0])
	}
	for total := 19; total <= 26; total++ {
		if r.RewardsByDemand[total][0] > r.RewardsByDemand[total-1][0]+1e-3 {
			t.Errorf("p1 not decreasing at demand %d: %v → %v", total*10,
				r.RewardsByDemand[total-1][0], r.RewardsByDemand[total][0])
		}
	}
	if r.RewardsByDemand[26][0] > r.RewardsByDemand[18][0]/2 {
		t.Errorf("p1 at demand 260 = %v, want well below the 180 MBps value %v",
			r.RewardsByDemand[26][0], r.RewardsByDemand[18][0])
	}
	// Rewards concentrate on the early-morning valley (periods 2–5);
	// periods 6–12 earn (essentially) nothing, as in Table XII.
	for total := 18; total <= 26; total++ {
		for i := 5; i < 12; i++ {
			if r.RewardsByDemand[total][i] > 0.05 {
				t.Errorf("demand %d: period %d reward %v, want ≈ 0",
					total*10, i+1, r.RewardsByDemand[total][i])
			}
		}
		if r.RewardsByDemand[total][1] <= 0.1 {
			t.Errorf("demand %d: p2 = %v, want clearly > 0", total*10, r.RewardsByDemand[total][1])
		}
	}
}

func TestWaitPerturb(t *testing.T) {
	r, err := WaitPerturb()
	if err != nil {
		t.Fatalf("WaitPerturb: %v", err)
	}
	// Table XIV: period-1 mis-estimation barely moves rewards.
	var maxDiff float64
	for i := range r.Baseline {
		maxDiff = math.Max(maxDiff, math.Abs(r.Baseline[i]-r.Period1Perturbed[i]))
	}
	if maxDiff > 0.1 {
		t.Errorf("period-1 perturbation moved rewards by %v, want ≤ 0.1 ($0.01)", maxDiff)
	}
	// Table XVI: re-optimizing after an all-period error buys almost
	// nothing (paper: 3.04 → 3.03, i.e. < 1%).
	if r.CostAdjusted > r.CostNominal+1e-9 {
		t.Error("re-optimizing increased cost")
	}
	rel := (r.CostNominal - r.CostAdjusted) / r.CostNominal
	if rel > 0.05 {
		t.Errorf("adjustment improved cost by %.1f%%, paper says <1%% — static model should be robust", 100*rel)
	}
}

func TestTimingWithinPaperBudgets(t *testing.T) {
	r, err := Timing()
	if err != nil {
		t.Fatalf("Timing: %v", err)
	}
	// The paper's 2011 laptop did these in 5 s and 25 s.
	if r.PriceDetermination > 5e9 {
		t.Errorf("price determination took %v, paper budget 5 s", r.PriceDetermination)
	}
	if r.Estimation > 25e9 {
		t.Errorf("estimation took %v, paper budget 25 s", r.Estimation)
	}
}

func TestTestbed(t *testing.T) {
	r, err := Testbed()
	if err != nil {
		t.Fatalf("Testbed: %v", err)
	}
	mc2 := r.MovedByUserClass["user2"]
	if !(mc2["video"] > mc2["ftp"] && mc2["ftp"] > mc2["web"]) {
		t.Errorf("user2 moved volumes out of order: %+v", mc2)
	}
	m1, m2 := 0.0, 0.0
	for _, v := range r.MovedByUserClass["user1"] {
		m1 += v
	}
	for _, v := range mc2 {
		m2 += v
	}
	if m1 >= m2/4 {
		t.Errorf("impatient user moved %v, patient %v", m1, m2)
	}
	if !strings.Contains(r.Render(), "8460.7") {
		t.Error("Render missing paper reference")
	}
}

func TestProfilerCheck(t *testing.T) {
	r, err := ProfilerCheck()
	if err != nil {
		t.Fatalf("ProfilerCheck: %v", err)
	}
	if r.RelativeError > 0.15 {
		t.Errorf("held-out net-flow error %.1f%%, want ≤ 15%%", 100*r.RelativeError)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	// Smoke-test every Render path produces output (cheap experiments only).
	r3, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if r3.Render() == "" {
		t.Error("Fig3 render empty")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if t3.Render() == "" {
		t.Error("Table3 render empty")
	}
}

func TestPerUserDollars(t *testing.T) {
	// 426 cost units → $4.26/user/day (the §V-A TIP figure).
	if got := PerUserDollars(426); math.Abs(got-4.26) > 1e-12 {
		t.Errorf("PerUserDollars(426) = %v, want 4.26", got)
	}
}
