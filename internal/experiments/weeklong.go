package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/tube"
)

// WeekLongResult traces the deepest integration in this repository: the
// Fig. 1 control loop driven not by a fluid reference model but by the
// emulated §VI-C testbed — stochastic sessions, a processor-sharing
// bottleneck, and background traffic.
//
// Its honest finding mirrors the paper's own caution ("estimation of
// waiting functions is not perfect no matter what statistical techniques
// are used", §IV) and its robustness tables (XIII–XVI): with one noisy
// day per observation the fitted betas are *effective* parameters — they
// soak up Poisson session noise and need not recover the per-class truth
// — yet the priced days still shave the TIP peak. Identification of true
// patience needs either aggregation over many days or the fluid-scale
// population of the Loop experiment.
type WeekLongResult struct {
	// Days of the trial.
	Days int
	// BetasByDay[d] is the ISP's per-class patience estimate after day
	// d+1 (classes: web, ftp, video).
	BetasByDay [][]float64
	// MovedByDay[d] is the volume (MB) the emulated users actually
	// deferred on day d+1.
	MovedByDay []float64
	// PeakOfferedByDay[d] is the busiest-period offered load (MB) on day
	// d+1 — the congestion proxy the rewards are meant to shave.
	PeakOfferedByDay []float64
	// TIPPeakOffered is the same quantity with no rewards.
	TIPPeakOffered float64
}

// WeekLong runs a multi-day trial: each day the controller plans rewards
// from its current patience belief, the testbed emulation reacts, and the
// measured per-class usage re-profiles the belief.
func WeekLong(days int) (*WeekLongResult, error) {
	if days <= 0 {
		days = 5
	}
	base := emul.DefaultConfig()
	// Normalized users keep the ISP's model well-specified in expectation
	// (raw-willingness users add a magnitude mis-specification on top).
	base.Behavior = emul.Normalized
	// The day repeats: let deferrals wrap the boundary, matching the §II
	// mod-n formulation the estimator assumes.
	base.CyclicDeferral = true

	// The ISP's deployment view: expected per-class demand (MB/period),
	// capacity at the 80% target, and an uninformative patience prior.
	capacity := make([]float64, base.Periods)
	for i := range capacity {
		capacity[i] = 0.8 * base.LinkMBps * base.PeriodSeconds
	}
	classes := make([]string, len(base.Classes))
	for j, cl := range base.Classes {
		classes[j] = cl.Name
	}
	ctrl, err := tube.NewController(tube.ControllerConfig{
		Demand:       base.ExpectedDemand(),
		Classes:      classes,
		InitialBetas: []float64{2.5, 2.5, 2.5},
		Capacity:     capacity,
		Cost:         core.LinearCost(base.CostSlope),
		// Emulated days are noisy; bank a few before trusting estimates.
		MinObservations: 2,
		EstimationIter:  80,
	})
	if err != nil {
		return nil, err
	}

	res := &WeekLongResult{Days: days}

	// TIP baseline day (no rewards) for the congestion reference.
	tipCfg := base
	tipCfg.Rewards = make([]float64, base.Periods)
	tip, err := emul.Run(tipCfg)
	if err != nil {
		return nil, err
	}
	res.TIPPeakOffered = peakOffered(tip, classes)

	for day := 0; day < days; day++ {
		day := day
		react := func(rewards []float64) ([][]float64, error) {
			cfg := base
			cfg.Rewards = rewards
			cfg.Seed = base.Seed + int64(day)*101
			out, err := emul.Run(cfg)
			if err != nil {
				return nil, err
			}
			usage := make([][]float64, cfg.Periods)
			for i := range usage {
				usage[i] = make([]float64, len(classes))
				for j, name := range classes {
					usage[i][j] = out.OfferedByClassPeriod[name][i]
				}
			}
			res.MovedByDay = append(res.MovedByDay, totalMoved(out))
			res.PeakOfferedByDay = append(res.PeakOfferedByDay, peakOffered(out, classes))
			return usage, nil
		}
		rep, err := ctrl.RunDay(react)
		if err != nil {
			return nil, fmt.Errorf("day %d: %w", day+1, err)
		}
		res.BetasByDay = append(res.BetasByDay, rep.Betas)
	}
	return res, nil
}

func totalMoved(r *emul.Result) float64 {
	var s float64
	for _, classes := range r.MovedByUserClass {
		for _, v := range classes {
			s += v
		}
	}
	return s
}

func peakOffered(r *emul.Result, classes []string) float64 {
	var peak float64
	if len(classes) == 0 {
		return 0
	}
	n := len(r.OfferedByClassPeriod[classes[0]])
	for i := 0; i < n; i++ {
		var load float64
		for _, c := range classes {
			load += r.OfferedByClassPeriod[c][i]
		}
		if load > peak {
			peak = load
		}
	}
	return peak
}

// Render formats the result.
func (r *WeekLongResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Week-long trial — control loop driving the emulated testbed\n")
	fmt.Fprintf(&sb, "  TIP peak offered load: %.0f MB/period\n", r.TIPPeakOffered)
	for d := 0; d < r.Days && d < len(r.BetasByDay); d++ {
		fmt.Fprintf(&sb, "  day %d: betas %.2f, moved %.0f MB, peak %.0f MB\n",
			d+1, r.BetasByDay[d], r.MovedByDay[d], r.PeakOfferedByDay[d])
	}
	sb.WriteString("  (TDP days shave the peak the TIP baseline hits)\n")
	return sb.String()
}
