package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/core"
	"tdp/internal/optimize"
	"tdp/internal/traffic"
)

// TwoPeriodResult quantifies §I's motivating claim: "the multiple peaks
// and valleys in bandwidth usage over one day make 2 period TDP
// inadequate". It compares the paper's n-period optimization against the
// classic day/night scheme (one reward for all off-peak periods, none at
// peak) on the same demand.
type TwoPeriodResult struct {
	// TIPCost, TwoPeriodCost, MultiPeriodCost in $0.10 units.
	TIPCost, TwoPeriodCost, MultiPeriodCost float64
	// TwoPeriodReward is the single optimized off-peak reward.
	TwoPeriodReward float64
	// OffPeakPeriods counts periods classified off-peak.
	OffPeakPeriods int
	// SavingsTwo and SavingsMulti are the relative cost reductions.
	SavingsTwo, SavingsMulti float64
}

// TwoPeriod runs the comparison on the §V-A day: off-peak periods are
// those under capacity under TIP (the binary pre-classification the paper
// says simple schemes rely on), all sharing one optimized reward.
func TwoPeriod() (*TwoPeriodResult, error) {
	scn := Static48()
	m, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, err
	}
	totals := scn.TotalDemand()
	offPeak := make([]bool, scn.Periods)
	count := 0
	for i := range offPeak {
		if totals[i] < scn.Capacity[i] {
			offPeak[i] = true
			count++
		}
	}
	build := func(q float64) []float64 {
		p := make([]float64, scn.Periods)
		for i, off := range offPeak {
			if off {
				p[i] = q
			}
		}
		return p
	}
	qStar, twoCost := optimize.Brent(func(q float64) float64 {
		return m.CostAt(build(q))
	}, 0, m.MaxReward(), 1e-9)

	full, err := m.Solve()
	if err != nil {
		return nil, err
	}
	tip := m.TIPCost()
	return &TwoPeriodResult{
		TIPCost:         tip,
		TwoPeriodCost:   twoCost,
		MultiPeriodCost: full.Cost,
		TwoPeriodReward: qStar,
		OffPeakPeriods:  count,
		SavingsTwo:      (tip - twoCost) / tip,
		SavingsMulti:    (tip - full.Cost) / tip,
	}, nil
}

// Render formats the result.
func (r *TwoPeriodResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§I ablation — 2-period (day/night) vs n-period TDP on the §V-A day\n")
	renderKV(&sb, "TIP cost ($0.10)", r.TIPCost, "")
	renderKV(&sb, "2-period TDP cost", r.TwoPeriodCost, "")
	renderKV(&sb, "48-period TDP cost", r.MultiPeriodCost, "")
	fmt.Fprintf(&sb, "  single off-peak reward %.3f over %d periods\n",
		r.TwoPeriodReward, r.OffPeakPeriods)
	fmt.Fprintf(&sb, "  savings: 2-period %.1f%% vs multi-period %.1f%%\n",
		100*r.SavingsTwo, 100*r.SavingsMulti)
	sb.WriteString("  (paper: multiple peaks and valleys make 2-period TDP inadequate)\n")
	return sb.String()
}

// CapAdjustedResult demonstrates §II's usage-cap device: below-cap users
// (not subject to TDP) consume a time-varying slice of the physical
// capacity, leaving a time-varying A_i for the optimization.
type CapAdjustedResult struct {
	// Available is the cap-adjusted A_i.
	Available []float64
	// ConstantCost and AdjustedCost compare optimizing against a constant
	// A (ignoring below-cap users) vs the correct time-varying A.
	ConstantCost, AdjustedCost float64
	// EvalConstOnAdjusted is the constant-A schedule evaluated on the
	// true time-varying capacity — the penalty for ignoring cap-exempt
	// traffic.
	EvalConstOnAdjusted float64
}

// CapAdjusted runs the comparison on the §V-A day with a diurnal
// below-cap load (heavier in the evening).
func CapAdjusted() (*CapAdjustedResult, error) {
	const physical = 20.0 // 10 MBps units; > the usual A = 18
	belowCap := make([]float64, 48)
	for i := range belowCap {
		// Below-cap users mostly browse in the evening (periods 36–48).
		switch {
		case i >= 36:
			belowCap[i] = 3
		case i >= 20:
			belowCap[i] = 2
		default:
			belowCap[i] = 1
		}
	}
	plan := traffic.CapAdjusted(physical, belowCap)

	adjScn := Static48()
	adjScn.Capacity = plan.Available
	adj, err := core.NewStaticModel(adjScn)
	if err != nil {
		return nil, err
	}
	adjPr, err := adj.Solve()
	if err != nil {
		return nil, err
	}

	constScn := Static48()
	constScn.Capacity = constant(48, physical)
	cm, err := core.NewStaticModel(constScn)
	if err != nil {
		return nil, err
	}
	cPr, err := cm.Solve()
	if err != nil {
		return nil, err
	}

	return &CapAdjustedResult{
		Available:           plan.Available,
		ConstantCost:        cPr.Cost,
		AdjustedCost:        adjPr.Cost,
		EvalConstOnAdjusted: adj.CostAt(cPr.Rewards),
	}, nil
}

// Render formats the result.
func (r *CapAdjustedResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§II device — cap-adjusted time-varying capacity A_i\n")
	renderSeries(&sb, "available capacity (10 MBps)", r.Available)
	renderKV(&sb, "cost optimizing vs constant A", r.ConstantCost, "")
	renderKV(&sb, "cost optimizing vs true A_i", r.AdjustedCost, "")
	renderKV(&sb, "constant-A schedule on true A_i", r.EvalConstOnAdjusted, "")
	sb.WriteString("  (ignoring cap-exempt traffic misprices the evening squeeze)\n")
	return sb.String()
}
