package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"tdp/internal/core"
	"tdp/internal/netsim"
	"tdp/internal/sessions"
	"tdp/internal/waiting"
)

// Prop5Result carries the Monte-Carlo validation of Prop. 5: the fluid
// dynamic model is the large-population limit of the §III session-level
// stochastic process.
type Prop5Result struct {
	// OfferedRelErr and CostRelErr are the relative deviations of the MC
	// means from the fluid predictions.
	OfferedRelErr, CostRelErr float64
	// FluidCost and MCCost are the compared totals ($0.10 units).
	FluidCost, MCCost float64
	// SessionsPerDay is the mean number of simulated sessions.
	SessionsPerDay int
}

// Prop5 simulates the 12-period paper scenario at session level (Poisson
// arrivals, exponential sizes, probabilistic deferral) and compares the
// averaged outcome with the fluid DynamicModel.
func Prop5() (*Prop5Result, error) {
	scn := Static12()
	scn.Capacity = constant(12, 18)
	scn.Cost = core.LinearCost(1)
	scn.MaxRewardNorm = 0 // dynamic convention: normalize at marginal cost

	dm, err := core.NewDynamicModel(scn)
	if err != nil {
		return nil, err
	}
	pr, err := dm.Solve()
	if err != nil {
		return nil, err
	}
	// Compare at half the optimal rewards: deferral is active but the
	// system stays congested, so the fluid cost is far from zero and the
	// MC's Jensen bias on max(z, 0) (which vanishes only as sessions
	// shrink) stays relatively small.
	rewards := make([]float64, len(pr.Rewards))
	for i, r := range pr.Rewards {
		rewards[i] = r / 2
	}

	cfg := sessions.Config{
		Periods:       12,
		ArrivalVolume: scn.Demand,
		MeanSize:      0.05,
		Betas:         scn.Betas,
		Capacity:      scn.Capacity,
		Rewards:       rewards,
		MaxReward:     dm.MaxReward(),
		Seed:          42,
	}
	const reps = 120
	offered, _, mcCost, err := sessions.MeanOverRuns(cfg, reps)
	if err != nil {
		return nil, err
	}
	wantArr := dm.Arrivals(rewards)
	var num, den float64
	for i := range wantArr {
		d := offered[i] - wantArr[i]
		num += d * d
		den += wantArr[i] * wantArr[i]
	}
	res := &Prop5Result{
		FluidCost: dm.CostAt(rewards),
		MCCost:    mcCost,
	}
	if den > 0 {
		res.OfferedRelErr = math.Sqrt(num / den)
	}
	if res.FluidCost > 0 {
		res.CostRelErr = math.Abs(res.MCCost-res.FluidCost) / res.FluidCost
	}
	one, err := sessions.Run(cfg)
	if err != nil {
		return nil, err
	}
	res.SessionsPerDay = len(one.Sessions)
	return res, nil
}

// Render formats the result.
func (r *Prop5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Prop. 5 check — session-level Monte-Carlo vs fluid dynamic model\n")
	fmt.Fprintf(&sb, "  ≈%d sessions/day, offered-volume rel. error %.2f%%\n",
		r.SessionsPerDay, 100*r.OfferedRelErr)
	fmt.Fprintf(&sb, "  cost: fluid %.2f vs MC mean %.2f (rel. error %.2f%%)\n",
		r.FluidCost, r.MCCost, 100*r.CostRelErr)
	sb.WriteString("  (paper: the dynamic model *is* this process's fluid limit)\n")
	return sb.String()
}

// DropTailResult characterizes the paper's testbed queue (footnote 7:
// 10 MBps, 120-packet buffer) under increasing offered load.
type DropTailResult struct {
	// Loads are offered/capacity ratios; LossRates and Utilizations are
	// the measured outcomes; MaxQueues the occupancy high-water marks.
	Loads, LossRates, Utilizations []float64
	MaxQueues                      []int
}

// DropTail sweeps offered load over the Fig. 10 bottleneck parameters.
func DropTail() (*DropTailResult, error) {
	res := &DropTailResult{}
	const pkt = 1500.0
	for _, load := range []float64{0.5, 0.9, 1.2, 2} {
		sim := netsim.NewSim()
		link, err := netsim.NewDropTailLink(sim, 10, 120)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(7))
		rate := load * 10e6 / pkt
		t := 0.0
		for {
			t += rng.ExpFloat64() / rate
			if t >= 3 {
				break
			}
			if err := sim.At(t, func() {
				// Drops are expected; enqueue errors are not.
				if _, err := link.Enqueue(netsim.Packet{Bytes: pkt}); err != nil {
					panic(err)
				}
			}); err != nil {
				return nil, err
			}
		}
		sim.Run(3)
		res.Loads = append(res.Loads, load)
		res.LossRates = append(res.LossRates, link.LossRate())
		res.Utilizations = append(res.Utilizations, link.Utilization())
		res.MaxQueues = append(res.MaxQueues, link.MaxQueue)
	}
	return res, nil
}

// Render formats the result.
func (r *DropTailResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Droptail bottleneck (Fig. 10 parameters: 10 MBps, 120-pkt buffer)\n")
	sb.WriteString("  load   loss%   util%   maxQ\n")
	for i := range r.Loads {
		fmt.Fprintf(&sb, "  %4.1f %7.2f %7.1f %6d\n",
			r.Loads[i], 100*r.LossRates[i], 100*r.Utilizations[i], r.MaxQueues[i])
	}
	sb.WriteString("  (loss appears past saturation; the congestion TDP relieves)\n")
	return sb.String()
}

// TCPResult characterizes TCP-Reno dynamics at the Fig. 10 bottleneck:
// several long flows with empirically drawn RTTs share the 10 MBps /
// 120-packet queue.
type TCPResult struct {
	// RTTs and Throughputs are per-flow (MB/s over the run).
	RTTs, Throughputs []float64
	// Utilization and LossRate summarize the link.
	Utilization, LossRate float64
	// TotalRetransmits across flows.
	TotalRetransmits int
}

// TCPAtBottleneck runs four long TCP flows for 30 seconds of simulated
// time through the paper's testbed queue.
func TCPAtBottleneck() (*TCPResult, error) {
	sim := netsim.NewSim()
	link, err := netsim.NewDropTailLink(sim, 10, 120)
	if err != nil {
		return nil, err
	}
	rtts := []float64{0.015, 0.04, 0.08, 0.15} // Aikat-style spread
	res := &TCPResult{RTTs: rtts}
	var sources []*netsim.TCPSource
	for i, rtt := range rtts {
		src, err := netsim.NewTCPSource(sim, link, i+1, rtt, 1500, 0, nil)
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
		src.Start()
	}
	const horizon = 30.0
	sim.Run(horizon)
	for _, src := range sources {
		res.Throughputs = append(res.Throughputs, src.AckedBytes()/horizon/1e6)
		res.TotalRetransmits += src.Retransmits
	}
	res.Utilization = link.Utilization()
	res.LossRate = link.LossRate()
	return res, nil
}

// Render formats the result.
func (r *TCPResult) Render() string {
	var sb strings.Builder
	sb.WriteString("TCP Reno at the Fig. 10 bottleneck (10 MBps, 120-pkt buffer)\n")
	sb.WriteString("  rtt(ms)  throughput(MB/s)\n")
	for i := range r.RTTs {
		fmt.Fprintf(&sb, "  %6.0f %12.2f\n", 1000*r.RTTs[i], r.Throughputs[i])
	}
	fmt.Fprintf(&sb, "  utilization %.0f%%, loss %.2f%%, retransmits %d\n",
		100*r.Utilization, 100*r.LossRate, r.TotalRetransmits)
	sb.WriteString("  (short-RTT flows win — the unfairness TDP prices around)\n")
	return sb.String()
}

// FiveDollarResult carries the §VII "$5 a month" extension experiment: a
// congestion-dependent pricer on 30-second slots plus a budget autopilot.
type FiveDollarResult struct {
	// SessionsServed out of SessionsOffered within the budget.
	SessionsServed, SessionsOffered int
	// IdleFraction is the fraction of served sessions that ran in
	// off-peak (low-utilization) slots.
	IdleFraction float64
	// Spend and FullPriceSpend compare the autopilot bill to undiscounted
	// billing ($0.10 units).
	Spend, FullPriceSpend float64
	// NeverDeferServed counts protected-class sessions that ran at peak.
	NeverDeferServed int
}

// FiveDollarPlan simulates a day of 30-second slots: background
// utilization follows the paper's daily shape, the pricer converts idle
// capacity into discounts, and an autopilot with a hard budget schedules
// a backlog of bulk sessions plus a trickle of never-defer traffic.
func FiveDollarPlan() (*FiveDollarResult, error) {
	pricer, err := core.NewCongestionPricer(0.8, 0.2, 0.9)
	if err != nil {
		return nil, err
	}
	const (
		basePrice    = 1.0
		slotsPerDay  = 2880 // 30-second slots
		bulkSessions = 400
	)
	auto := core.NewAutopilot(core.AutopilotConfig{
		SpendBudget:  50, // $5 in $0.10 units
		NeverDefer:   map[int]bool{1: true},
		PriceCeiling: 0.3,
	})
	// Utilization over the day: the Table VII shape resampled per slot.
	totals := waiting.Totals(waiting.Demand48())
	peak := 0.0
	for _, x := range totals {
		peak = math.Max(peak, x)
	}
	rng := rand.New(rand.NewSource(9))
	res := &FiveDollarResult{SessionsOffered: bulkSessions}
	pending := bulkSessions
	var idleServed int
	for slot := 0; slot < slotsPerDay; slot++ {
		util := totals[slot*48/slotsPerDay] / peak * 1.1 // busiest hour ≈110%
		reward := pricer.Update(util)
		price := math.Max(basePrice-reward, 0)

		// A never-defer session every ~5 minutes regardless of price.
		if slot%10 == 5 {
			if auto.Decide(1, 0.1, price) == core.RunNow {
				auto.RecordSpend(0.1 * price)
				res.NeverDeferServed++
			}
		}
		// Bulk backlog: one unit-volume session attempt per slot.
		if pending > 0 && rng.Float64() < 0.5 {
			if auto.Decide(0, 0.25, price) == core.RunNow {
				auto.RecordSpend(0.25 * price)
				pending--
				res.SessionsServed++
				if util < 0.8 {
					idleServed++
				}
			}
		}
	}
	if res.SessionsServed > 0 {
		res.IdleFraction = float64(idleServed) / float64(res.SessionsServed)
	}
	res.Spend = auto.Spent()
	res.FullPriceSpend = float64(res.SessionsServed)*0.25*basePrice +
		float64(res.NeverDeferServed)*0.1*basePrice
	return res, nil
}

// Render formats the result.
func (r *FiveDollarResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§VII extension — \"$5 a month\" autopilot on 30-second slots\n")
	fmt.Fprintf(&sb, "  bulk sessions served: %d/%d, %.0f%% in off-peak slots\n",
		r.SessionsServed, r.SessionsOffered, 100*r.IdleFraction)
	fmt.Fprintf(&sb, "  never-defer sessions served at any price: %d\n", r.NeverDeferServed)
	fmt.Fprintf(&sb, "  spend: $%.2f vs $%.2f at full price (budget $5.00)\n",
		r.Spend*unitDollars, r.FullPriceSpend*unitDollars)
	return sb.String()
}
