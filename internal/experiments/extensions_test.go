package experiments

import (
	"strings"
	"testing"
)

func TestProp5(t *testing.T) {
	r, err := Prop5()
	if err != nil {
		t.Fatalf("Prop5: %v", err)
	}
	if r.OfferedRelErr > 0.05 {
		t.Errorf("offered-volume rel. error %.2f%%, want ≤ 5%%", 100*r.OfferedRelErr)
	}
	if r.CostRelErr > 0.15 {
		t.Errorf("cost rel. error %.2f%%, want ≤ 15%%", 100*r.CostRelErr)
	}
	if r.SessionsPerDay < 500 {
		t.Errorf("only %d sessions/day — not a meaningful fluid-limit check", r.SessionsPerDay)
	}
	if !strings.Contains(r.Render(), "Prop. 5") {
		t.Error("Render missing header")
	}
}

func TestDropTail(t *testing.T) {
	r, err := DropTail()
	if err != nil {
		t.Fatalf("DropTail: %v", err)
	}
	if len(r.Loads) != 4 {
		t.Fatalf("%d sweep points", len(r.Loads))
	}
	// Sub-saturation: essentially lossless; overload: loss ≈ 1 − 1/load.
	for i, load := range r.Loads {
		loss := r.LossRates[i]
		switch {
		case load <= 0.9:
			if loss > 0.01 {
				t.Errorf("load %v: loss %v, want ≈0", load, loss)
			}
		case load >= 1.2:
			want := 1 - 1/load
			if loss < want-0.05 || loss > want+0.05 {
				t.Errorf("load %v: loss %v, want ≈%v", load, loss, want)
			}
			if r.Utilizations[i] < 0.98 {
				t.Errorf("load %v: utilization %v, want ≈1", load, r.Utilizations[i])
			}
			if r.MaxQueues[i] != 120 {
				t.Errorf("load %v: max queue %d, want pinned at 120", load, r.MaxQueues[i])
			}
		}
	}
	// Loss increases with load.
	for i := 1; i < len(r.LossRates); i++ {
		if r.LossRates[i] < r.LossRates[i-1]-1e-9 {
			t.Error("loss rate not monotone in load")
		}
	}
}

func TestTCPAtBottleneck(t *testing.T) {
	r, err := TCPAtBottleneck()
	if err != nil {
		t.Fatalf("TCPAtBottleneck: %v", err)
	}
	if len(r.Throughputs) != 4 {
		t.Fatalf("%d flows", len(r.Throughputs))
	}
	var total float64
	for i, th := range r.Throughputs {
		if th <= 0 {
			t.Errorf("flow %d starved", i)
		}
		total += th
	}
	// Together the flows saturate the 10 MB/s link.
	if total < 7 || total > 10.5 {
		t.Errorf("aggregate throughput %v MB/s, want ≈10", total)
	}
	// RTT unfairness: the shortest-RTT flow beats the longest.
	if !(r.Throughputs[0] > r.Throughputs[len(r.Throughputs)-1]) {
		t.Errorf("no RTT unfairness: %v", r.Throughputs)
	}
	if r.Utilization < 0.9 {
		t.Errorf("utilization %v, want ≈1", r.Utilization)
	}
	if r.TotalRetransmits == 0 {
		t.Error("no losses at a saturated droptail queue")
	}
}

func TestFiveDollarPlan(t *testing.T) {
	r, err := FiveDollarPlan()
	if err != nil {
		t.Fatalf("FiveDollarPlan: %v", err)
	}
	// The point of the plan: nearly all bulk traffic lands off-peak…
	if r.IdleFraction < 0.9 {
		t.Errorf("idle fraction %.2f, want ≥ 0.9", r.IdleFraction)
	}
	// …the budget binds…
	if r.Spend > 50 {
		t.Errorf("spend %v exceeded the $5 budget", r.Spend)
	}
	// …and the user pays far less than full price for what they got.
	if r.Spend > 0.5*r.FullPriceSpend {
		t.Errorf("spend %v not well below full price %v", r.Spend, r.FullPriceSpend)
	}
	// Most of the backlog is actually served.
	if float64(r.SessionsServed) < 0.8*float64(r.SessionsOffered) {
		t.Errorf("served %d of %d — autopilot starved", r.SessionsServed, r.SessionsOffered)
	}
	// The protected class keeps running through the peak.
	if r.NeverDeferServed < 200 {
		t.Errorf("never-defer served %d, want the full trickle", r.NeverDeferServed)
	}
}
