package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/estimate"
	"tdp/internal/waiting"
)

// TimingResult carries §VI-B's efficiency measurements of the TUBE
// Optimizer engines.
type TimingResult struct {
	// PriceDetermination is one online price-determination pass with 12
	// periods and 10 session types (paper: < 5 s).
	PriceDetermination time.Duration
	// Estimation is one waiting-function estimation with 3 periods and 2
	// types (paper: < 25 s).
	Estimation time.Duration
}

// Timing measures both engines on this machine.
func Timing() (*TimingResult, error) {
	// Price determination: full solve then one online step, as the TUBE
	// Optimizer runs each period.
	start := time.Now()
	online, err := core.NewOnlineOptimizer(Static12(), core.OnlineConfig{})
	if err != nil {
		return nil, err
	}
	if _, err := online.Advance(waiting.Dist12[0][:]); err != nil {
		return nil, err
	}
	priceDur := time.Since(start)

	// Estimation: the Table III workload.
	start = time.Now()
	if _, err := Table3(); err != nil {
		return nil, err
	}
	estDur := time.Since(start)

	return &TimingResult{PriceDetermination: priceDur, Estimation: estDur}, nil
}

// Render formats the result.
func (r *TimingResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§VI-B — TUBE Optimizer engine timing\n")
	fmt.Fprintf(&sb, "  price determination (12 periods, 10 types): %v   (paper: < 5 s)\n",
		r.PriceDetermination)
	fmt.Fprintf(&sb, "  waiting-function estimation (3 periods, 2 types): %v   (paper: < 25 s)\n",
		r.Estimation)
	return sb.String()
}

// TestbedResult carries the §VI-C proof-of-concept emulation (Figs. 11/12).
type TestbedResult struct {
	Rewards []float64
	// TIPTraffic / TDPTraffic are per-user per-period served volumes (MB).
	TIPTraffic, TDPTraffic map[string][]float64
	// MovedByUserClass is the TDP run's deferred volume per user and class
	// (paper, user 2: web 143.2 MB, ftp 707.8 MB, video 8460.7 MB;
	// user 1 barely defers).
	MovedByUserClass map[string]map[string]float64
}

// Testbed runs the emulated TUBE experiment with the default (paper-shaped)
// configuration.
func Testbed() (*TestbedResult, error) {
	cfg := emul.DefaultConfig()
	tip, tdp, err := emul.RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	return &TestbedResult{
		Rewards:          tdp.Rewards,
		TIPTraffic:       tip.ServedByUserPeriod,
		TDPTraffic:       tdp.ServedByUserPeriod,
		MovedByUserClass: tdp.MovedByUserClass,
	}, nil
}

// Render formats the result.
func (r *TestbedResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Figs. 11/12 — TUBE testbed emulation (10 MBps bottleneck, 1 hour)\n")
	renderSeries(&sb, "published rewards ($0.10)", r.Rewards)
	for _, user := range []string{"user1", "user2"} {
		renderSeries(&sb, fmt.Sprintf("TIP traffic %s (MB/period)", user), r.TIPTraffic[user])
		renderSeries(&sb, fmt.Sprintf("TDP traffic %s (MB/period)", user), r.TDPTraffic[user])
	}
	sb.WriteString("  volume moved by TDP (MB):\n")
	for _, user := range []string{"user1", "user2"} {
		mc := r.MovedByUserClass[user]
		fmt.Fprintf(&sb, "    %s: web %.1f, ftp %.1f, video %.1f\n",
			user, mc["web"], mc["ftp"], mc["video"])
	}
	sb.WriteString("  (paper, user 2: web 143.2, ftp 707.8, video 8460.7; user 1 never defers)\n")
	return sb.String()
}

// ProfilerCheck cross-validates the §IV machinery the TUBE profiling
// engine uses at deployment scale: it generates a day of observations for
// the 12-period, 10-type scenario and verifies the fitted parameters
// reproduce the observed net flows.
type ProfilerCheckResult struct {
	// RelativeError is ‖predicted−observed‖ / ‖observed‖ over a held-out
	// reward set.
	RelativeError float64
}

// ProfilerCheck runs the cross-validation.
func ProfilerCheck() (*ProfilerCheckResult, error) {
	scn := Static12()
	gen := &estimate.Model{
		Periods:     12,
		Types:       10,
		BaselineTIP: scn.TotalDemand(),
		MaxReward:   scn.Cost.MaxSlope(),
		MaxIter:     120, // 240-parameter fit; full convergence is not the point here
	}
	truth := estimate.NewParams(12, 10)
	totals := scn.TotalDemand()
	for i := 0; i < 12; i++ {
		for j := range waiting.PatienceIndices {
			truth.Alpha[i][j] = scn.Demand[i][j] / totals[i]
			truth.Beta[i][j] = waiting.PatienceIndices[j]
		}
	}
	train := [][]float64{
		{0, 0.5, 1, 0, 0.5, 1, 0, 0.5, 1, 0, 0.5, 1},
		{1.5, 0, 0, 1.5, 0, 0, 1.5, 0, 0, 1.5, 0, 0},
		{0.2, 0.4, 0.6, 0.8, 1, 1.2, 0.2, 0.4, 0.6, 0.8, 1, 1.2},
		{1.2, 1, 0.8, 0.6, 0.4, 0.2, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 1.2, 1, 0.8, 0.6, 0.4, 0.2},
		{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7},
	}
	var obs []estimate.Observation
	for _, p := range train {
		t, err := gen.NetFlows(truth, p)
		if err != nil {
			return nil, err
		}
		obs = append(obs, estimate.Observation{Rewards: p, T: t})
	}
	fit, err := gen.Fit(obs)
	if err != nil {
		return nil, err
	}
	holdout := []float64{1.1, 0.2, 0.9, 0.4, 0.7, 0.1, 1.3, 0.3, 0.8, 0.5, 0.6, 1}
	want, err := gen.NetFlows(truth, holdout)
	if err != nil {
		return nil, err
	}
	got, err := gen.NetFlows(fit.Params, holdout)
	if err != nil {
		return nil, err
	}
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	res := &ProfilerCheckResult{}
	if den > 0 {
		res.RelativeError = math.Sqrt(num / den)
	}
	return res, nil
}

// Render formats the result.
func (r *ProfilerCheckResult) Render() string {
	return fmt.Sprintf("Profiler cross-validation — held-out net-flow error: %.2f%%\n",
		100*r.RelativeError)
}
