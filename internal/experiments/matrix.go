package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/core"
	"tdp/internal/mechanism"
)

// MechanismMatrixResult is a head-to-head comparison of pricing
// mechanisms over one identical scenario and user population: every row
// is one mechanism's day plan scored under the same §II static reaction
// model, so the differences are attributable to the pricing scheme
// alone — the comparison style of Loiseau et al.'s fixed-budget-rebate
// versus time-of-day study, extended to the full zoo.
type MechanismMatrixResult struct {
	// Scenario names the workload the matrix ran on.
	Scenario string
	// Rows holds one outcome per mechanism, in run order.
	Rows []*mechanism.Outcome
}

// MechanismMatrix plans and evaluates every pricer over the scenario.
// All rows share the declared TIP demand as their first-day knowledge
// (no observation), mirroring a cold-start deployment choice between
// mechanisms.
func MechanismMatrix(name string, scn *core.Scenario, pricers []mechanism.Pricer) (*MechanismMatrixResult, error) {
	if len(pricers) == 0 {
		return nil, fmt.Errorf("mechanism matrix %q: no pricers", name)
	}
	res := &MechanismMatrixResult{Scenario: name}
	for _, p := range pricers {
		out, err := mechanism.PlanAndEvaluate(p, scn, nil)
		if err != nil {
			return nil, fmt.Errorf("matrix %q: %w", name, err)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// DefaultZoo builds one of every registered mechanism with sensible
// parameters for the scenario: static-tod rewards the TIP slack periods
// at 80% of the cap, rebate commits half the TIP congestion cost, and
// reverse runs its default damped fixed point.
func DefaultZoo(scn *core.Scenario) ([]mechanism.Pricer, error) {
	specs := []struct {
		name   string
		params mechanism.Params
	}{
		{"none", mechanism.Params{}},
		{"static-tod", mechanism.Params{Windows: mechanism.SlackWindows(scn, 0.8)}},
		{"rebate", mechanism.Params{}},
		{"reverse", mechanism.Params{}},
		{"tdp", mechanism.Params{}},
	}
	out := make([]mechanism.Pricer, 0, len(specs))
	for _, s := range specs {
		p, err := mechanism.New(s.name, s.params)
		if err != nil {
			return nil, fmt.Errorf("default zoo: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// MechanismZoo runs the default zoo over the §V-A static 48-period
// scenario — the catalogue entry for cmd/tubebench.
func MechanismZoo() (*MechanismMatrixResult, error) {
	scn := Static48()
	zoo, err := DefaultZoo(scn)
	if err != nil {
		return nil, err
	}
	return MechanismMatrix("static48", scn, zoo)
}

// Render prints the comparison table: per mechanism the ISP's daily
// cost (and its change vs TIP), how the cost splits into reward outlay
// and congestion, the users' surplus gain, and the physical congestion
// left over (volume above capacity and the number of over-capacity
// periods). Money is in the model's $0.10 units, volume in 10 MBps.
func (r *MechanismMatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Mechanism matrix — scenario %s (money in $0.10, volume in 10 MBps)\n", r.Scenario)
	fmt.Fprintf(&sb, "  %-12s %10s %8s %10s %10s %10s %10s %7s\n",
		"mechanism", "ISP cost", "Δ vs TIP", "outlay", "congest", "welfare", "overflow", "per>cap")
	for _, o := range r.Rows {
		fmt.Fprintf(&sb, "  %-12s %10.2f %7.1f%% %10.2f %10.2f %10.2f %10.2f %7d\n",
			o.Mechanism, o.ISPCost, 100*o.Savings(), o.RewardOutlay,
			o.CongestionCost, o.UserWelfare, o.Overflow, o.OverflowPeriods)
	}
	return sb.String()
}
