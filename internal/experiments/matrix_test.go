package experiments

import (
	"strings"
	"testing"

	"tdp/internal/mechanism"
)

func TestMechanismMatrixStatic12(t *testing.T) {
	scn := Static12()
	zoo, err := DefaultZoo(scn)
	if err != nil {
		t.Fatalf("DefaultZoo: %v", err)
	}
	if len(zoo) < 4 {
		t.Fatalf("zoo has %d pricers, want ≥ 4", len(zoo))
	}
	res, err := MechanismMatrix("static12", scn, zoo)
	if err != nil {
		t.Fatalf("MechanismMatrix: %v", err)
	}
	if len(res.Rows) != len(zoo) {
		t.Fatalf("%d rows for %d pricers", len(res.Rows), len(zoo))
	}

	byName := map[string]*mechanism.Outcome{}
	tip := 0.0
	for _, o := range res.Rows {
		byName[o.Mechanism] = o
		if tip == 0 {
			tip = o.TIPCost
		} else if o.TIPCost != tip {
			t.Fatalf("TIP baseline differs across rows: %v vs %v", o.TIPCost, tip)
		}
	}
	// "none" is TIP by definition.
	if none := byName["none"]; none.ISPCost != none.TIPCost {
		t.Fatalf("none: ISP cost %v != TIP cost %v", none.ISPCost, none.TIPCost)
	}
	// TDP is the cost-minimizing plan: no other mechanism beats it.
	best := byName["tdp"].ISPCost
	for name, o := range byName {
		if o.ISPCost < best-1e-6 {
			t.Fatalf("%s (%v) beats tdp (%v) — optimizer not optimal?", name, o.ISPCost, best)
		}
	}
	// Every non-trivial mechanism moves some traffic (pays something).
	for _, name := range []string{"tdp", "rebate", "reverse", "static-tod"} {
		if byName[name].RewardOutlay <= 0 {
			t.Fatalf("%s pays no rewards", name)
		}
	}
}

func TestMechanismZooRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full 48-period matrix in -short mode")
	}
	res, err := MechanismZoo()
	if err != nil {
		t.Fatalf("MechanismZoo: %v", err)
	}
	text := res.Render()
	for _, want := range []string{"mechanism", "ISP cost", "tdp", "rebate", "reverse", "static-tod", "none"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	// The §V-A headline: TDP saves ~24% vs TIP; the matrix must
	// reproduce it within a point.
	for _, o := range res.Rows {
		if o.Mechanism == "tdp" {
			if s := o.Savings(); s < 0.20 || s > 0.30 {
				t.Fatalf("tdp savings = %.1f%%, want ≈ 24%%", 100*s)
			}
		}
	}
}
