package experiments

import (
	"strings"
	"testing"
)

func TestDefinite(t *testing.T) {
	r, err := Definite()
	if err != nil {
		t.Fatalf("Definite: %v", err)
	}
	// Both schemes beat TIP.
	if !(r.ProbCost < r.TIPCost) {
		t.Errorf("probabilistic cost %v not below TIP %v", r.ProbCost, r.TIPCost)
	}
	if r.DefCost > r.TIPCost+1e-9 {
		t.Errorf("definite cost %v above TIP %v", r.DefCost, r.TIPCost)
	}
	// Multistart never loses to a single start.
	if r.MultistartSpread < -1e-9 {
		t.Errorf("multistart worse than single start by %v", -r.MultistartSpread)
	}
	if r.DeferredTypes == 0 {
		t.Error("no definite deferrals at the optimum")
	}
	if !strings.Contains(r.Render(), "Appendix D") {
		t.Error("Render missing header")
	}
}

func TestFixedDurationExperiment(t *testing.T) {
	r, err := FixedDuration()
	if err != nil {
		t.Fatalf("FixedDuration: %v", err)
	}
	if r.TIPCost <= 0 {
		t.Fatal("scenario does not congest under TIP")
	}
	if !(r.TDPCost < r.TIPCost) {
		t.Errorf("TDP cost %v not below TIP %v", r.TDPCost, r.TIPCost)
	}
	if !(r.TDPExcess < r.TIPExcess) {
		t.Errorf("TDP over-capacity concurrency %v not below TIP %v",
			r.TDPExcess, r.TIPExcess)
	}
	if len(r.Rewards) != 12 {
		t.Errorf("%d rewards", len(r.Rewards))
	}
	if !strings.Contains(r.Render(), "Appendix G") {
		t.Error("Render missing header")
	}
}
