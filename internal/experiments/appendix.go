package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/core"
)

// DefiniteResult compares Appendix D's definite-choice model (users defer
// deterministically to their argmax period) against the probabilistic
// model on the same 12-period day.
type DefiniteResult struct {
	// ProbCost is the probabilistic (convex) optimum.
	ProbCost float64
	// DefCost is the best definite-choice cost found by multistart.
	DefCost float64
	// TIPCost is the common no-reward baseline.
	TIPCost float64
	// MultistartSpread is the best-vs-single-start cost gap, the
	// non-convexity signature the paper predicts ("likely non-convex").
	MultistartSpread float64
	// DeferredTypes counts (period, type) pairs that commit to deferring
	// at the definite optimum.
	DeferredTypes int
}

// Definite runs the comparison.
func Definite() (*DefiniteResult, error) {
	scn := Static12()
	sm, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, err
	}
	prob, err := sm.Solve()
	if err != nil {
		return nil, err
	}
	dc, err := core.NewDefiniteChoiceModel(scn)
	if err != nil {
		return nil, err
	}
	dc.Threshold = 0.2
	dc.Starts = 12
	multi, err := dc.Solve()
	if err != nil {
		return nil, err
	}
	// A fresh model rather than a struct copy: the model owns a workspace
	// pool that must not be duplicated.
	single, err := core.NewDefiniteChoiceModel(scn)
	if err != nil {
		return nil, err
	}
	single.Threshold = 0.2
	single.Starts = 1
	one, err := single.Solve()
	if err != nil {
		return nil, err
	}
	var deferred int
	for _, row := range dc.Choices(multi.Rewards) {
		for _, k := range row {
			if k >= 0 {
				deferred++
			}
		}
	}
	return &DefiniteResult{
		ProbCost:         prob.Cost,
		DefCost:          multi.Cost,
		TIPCost:          prob.TIPCost,
		MultistartSpread: one.Cost - multi.Cost,
		DeferredTypes:    deferred,
	}, nil
}

// Render formats the result.
func (r *DefiniteResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Appendix D — definite-choice vs probabilistic model (12 periods)\n")
	renderKV(&sb, "TIP cost ($0.10)", r.TIPCost, "")
	renderKV(&sb, "probabilistic optimum (convex)", r.ProbCost, "")
	renderKV(&sb, "definite-choice best (multistart)", r.DefCost, "")
	renderKV(&sb, "single-start penalty", r.MultistartSpread, "≥ 0 (non-convex)")
	fmt.Fprintf(&sb, "  %d (period, type) pairs commit to deferring\n", r.DeferredTypes)
	sb.WriteString("  (paper: the definite model's optimization is likely non-convex)\n")
	return sb.String()
}

// FixedDurationResult carries the Appendix G variant: fixed-duration
// (streaming-like) sessions that leave at rate d·N.
type FixedDurationResult struct {
	TIPCost, TDPCost float64
	// TIPExcess and TDPExcess are Σ max(N_i − A_i, 0): the total
	// over-capacity concurrency the quality degradation rides on.
	TIPExcess, TDPExcess float64
	// TIPPeakSessions / TDPPeakSessions report the absolute concurrency
	// peaks (informational: with a near-linear f the optimizer is free to
	// trade peak height against breadth).
	TIPPeakSessions, TDPPeakSessions float64
	Rewards                          []float64
}

// FixedDuration solves the Appendix G model on a streaming-heavy day:
// sessions last two periods on average (departure rate 0.5/period).
func FixedDuration() (*FixedDurationResult, error) {
	scn := Static12()
	scn.Capacity = constant(12, 14) // tighter: concurrency amplifies load
	// Two-tier congestion cost: quality degrades faster the deeper the
	// overload, so the optimizer also flattens peaks.
	scn.Cost = core.CostFunc{Breaks: []float64{0, 4}, Slopes: []float64{1, 2}}
	scn.MaxRewardNorm = 1
	fm, err := core.NewFixedDurationModel(scn, 0.5, 1)
	if err != nil {
		return nil, err
	}
	pr, err := fm.Solve()
	if err != nil {
		return nil, err
	}
	zero := make([]float64, 12)
	tipCounts := fm.SessionCounts(zero)
	tdpCounts := fm.SessionCounts(pr.Rewards)
	peak := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	excess := func(xs []float64) float64 {
		var s float64
		for i, x := range xs {
			if over := x - scn.Capacity[i]; over > 0 {
				s += over
			}
		}
		return s
	}
	return &FixedDurationResult{
		TIPCost:         pr.TIPCost,
		TDPCost:         pr.Cost,
		TIPExcess:       excess(tipCounts),
		TDPExcess:       excess(tdpCounts),
		TIPPeakSessions: peak(tipCounts),
		TDPPeakSessions: peak(tdpCounts),
		Rewards:         pr.Rewards,
	}, nil
}

// Render formats the result.
func (r *FixedDurationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Appendix G — fixed-duration (streaming) sessions, d = 0.5/period\n")
	renderSeries(&sb, "optimal rewards ($0.10)", r.Rewards)
	renderKV(&sb, "TIP cost ($0.10)", r.TIPCost, "")
	renderKV(&sb, "TDP cost ($0.10)", r.TDPCost, "")
	renderKV(&sb, "over-capacity concurrency, TIP", r.TIPExcess, "")
	renderKV(&sb, "over-capacity concurrency, TDP", r.TDPExcess, "")
	renderKV(&sb, "peak concurrent sessions, TIP", r.TIPPeakSessions, "")
	renderKV(&sb, "peak concurrent sessions, TDP", r.TDPPeakSessions, "")
	sb.WriteString("  (quality degradation rides concurrency; TDP trims the peak)\n")
	return sb.String()
}
