package experiments

import (
	"fmt"
	"strings"

	"tdp/internal/estimate"
)

// Table3Result carries the §IV waiting-function estimation experiment
// (Table III and Fig. 2): fit accuracy per period plus the Fig. 2 curves
// for period 1.
type Table3Result struct {
	Actual    estimate.Params
	Estimated estimate.Params
	// MaxPercentError per period; paper: 11.8, 9.0, 0.5.
	MaxPercentError []float64
	// Fig2Actual/Fig2Estimated are the period-1 aggregate waiting curves
	// at reward 0.5 over deferral times 1..n−1.
	Fig2Actual, Fig2Estimated []float64
	RSS                       float64
}

// Table3 generates control-experiment data from the paper's "actual"
// parameters (2 types, 3 periods, rewards swept in [0, 1]), runs the
// estimation algorithm, and measures the waiting-curve error.
func Table3() (*Table3Result, error) {
	model := &estimate.Model{
		Periods:     3,
		Types:       2,
		BaselineTIP: []float64{22, 13, 8},
		MaxReward:   1,
	}
	actual := estimate.NewParams(3, 2)
	alpha1 := []float64{0.17, 0.5, 0.83}
	beta2 := []float64{2, 2.33, 2.67}
	for i := 0; i < 3; i++ {
		actual.Alpha[i][0] = alpha1[i]
		actual.Alpha[i][1] = 1 - alpha1[i]
		actual.Beta[i][0] = 1
		actual.Beta[i][1] = beta2[i]
	}

	var obs []estimate.Observation
	levels := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, a := range levels {
		for _, b := range levels {
			for _, c := range levels {
				if a == 0 && b == 0 && c == 0 {
					continue
				}
				p := []float64{a, b, c}
				t, err := model.NetFlows(actual, p)
				if err != nil {
					return nil, err
				}
				obs = append(obs, estimate.Observation{Rewards: p, T: t})
			}
		}
	}
	fit, err := model.Fit(obs)
	if err != nil {
		return nil, err
	}

	res := &Table3Result{Actual: actual, Estimated: fit.Params, RSS: fit.RSS}
	probe := []float64{0.25, 0.5, 0.75, 1}
	for period := 0; period < 3; period++ {
		pe, err := model.MaxPercentError(actual, fit.Params, period, probe)
		if err != nil {
			return nil, err
		}
		res.MaxPercentError = append(res.MaxPercentError, pe)
	}
	if res.Fig2Actual, err = model.WaitingCurve(actual, 0, 0.5); err != nil {
		return nil, err
	}
	if res.Fig2Estimated, err = model.WaitingCurve(fit.Params, 0, 0.5); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the result.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table III / Fig. 2 — waiting-function estimation (3 periods, 2 types)\n")
	sb.WriteString("  period   actual β₁ β₂ α₁        estimated β₁ β₂ α₁     maxErr%\n")
	paperErr := []float64{11.8, 9.0, 0.5}
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, "  %4d     %.2f %.2f %.2f          %.2f %.2f %.2f          %5.1f (paper %.1f)\n",
			i+1,
			r.Actual.Beta[i][0], r.Actual.Beta[i][1], r.Actual.Alpha[i][0],
			r.Estimated.Beta[i][0], r.Estimated.Beta[i][1], r.Estimated.Alpha[i][0],
			r.MaxPercentError[i], paperErr[i])
	}
	renderSeries(&sb, "Fig. 2 actual curve (period 1, p=0.5)", r.Fig2Actual)
	renderSeries(&sb, "Fig. 2 estimated curve", r.Fig2Estimated)
	fmt.Fprintf(&sb, "  fit RSS: %.3g\n", r.RSS)
	return sb.String()
}
