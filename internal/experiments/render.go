package experiments

import (
	"fmt"
	"strings"
)

// renderSeries formats a labeled numeric series, one value per line block,
// wrapping at width entries for terminal readability.
func renderSeries(sb *strings.Builder, label string, xs []float64) {
	fmt.Fprintf(sb, "%s:\n", label)
	// Pick a column format wide enough for the largest magnitude.
	format := "%8.3f"
	for _, x := range xs {
		if x >= 1000 || x <= -100 {
			format = "%9.1f"
			break
		}
	}
	const width = 12
	for i := 0; i < len(xs); i += width {
		end := i + width
		if end > len(xs) {
			end = len(xs)
		}
		sb.WriteString("  ")
		for j := i; j < end; j++ {
			fmt.Fprintf(sb, format, xs[j])
		}
		sb.WriteByte('\n')
	}
}

// renderKV formats one "name: value" line with a paper-reference suffix.
func renderKV(sb *strings.Builder, name string, value float64, paper string) {
	if paper == "" {
		fmt.Fprintf(sb, "  %-38s %10.3f\n", name, value)
		return
	}
	fmt.Fprintf(sb, "  %-38s %10.3f   (paper: %s)\n", name, value, paper)
}
