package experiments

import (
	"fmt"
	"math"
	"strings"

	"tdp/internal/core"
	"tdp/internal/traffic"
	"tdp/internal/waiting"
)

// Fig78Result carries the offline dynamic optimization (§V-B): Fig. 7's
// rewards and Fig. 8's traffic (offered-load) profiles.
type Fig78Result struct {
	Rewards        []float64
	TIPLoad        []float64
	TDPLoad        []float64
	TDPCostPerUser float64 // dollars; paper 0.72
	TIPCostPerUser float64
	MaxReward      float64 // $; paper: breaks the 0.15 barrier of Fig. 4
	StaticMaxFrac  float64 // max reward / P for the static Fig. 4 run
	DynamicMaxFrac float64 // max reward / P here
	TIPResidue     float64 // GB; paper 2623.1 †
	TDPResidue     float64 // GB; paper 1142.0 †
	AreaBetween    float64 // GB; paper 1495.2 †
}

// Fig7Fig8 solves the offline dynamic model and computes the Fig. 7/8
// quantities, including the reward-magnitude comparison against the
// static model that the paper highlights.
func Fig7Fig8() (*Fig78Result, error) {
	dm, err := core.NewDynamicModel(Dynamic48())
	if err != nil {
		return nil, err
	}
	pr, err := dm.Solve()
	if err != nil {
		return nil, err
	}
	tipLoad, _ := dm.Load(make([]float64, 48))
	tdpLoad, _ := dm.Load(pr.Rewards)
	tipProfile := traffic.NewProfile(tipLoad)
	tdpProfile := traffic.NewProfile(tdpLoad)
	area, err := traffic.AreaBetween(tipProfile, tdpProfile)
	if err != nil {
		return nil, err
	}

	// Static comparison for the "barrier" claim.
	sm, err := core.NewStaticModel(Static48())
	if err != nil {
		return nil, err
	}
	spr, err := sm.Solve()
	if err != nil {
		return nil, err
	}
	maxOf := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			m = math.Max(m, x)
		}
		return m
	}
	// The paper's "barrier": in the static model a reward never exceeds
	// half the marginal cost of exceeding capacity (§V-A's $0.15 = half
	// of the $0.30 marginal benefit); with carry-over the marginal
	// benefit compounds across periods and the optimum breaks that ratio.
	return &Fig78Result{
		Rewards:        pr.Rewards,
		TIPLoad:        tipLoad,
		TDPLoad:        tdpLoad,
		TDPCostPerUser: PerUserDollars(pr.Cost),
		TIPCostPerUser: PerUserDollars(pr.TIPCost),
		MaxReward:      maxOf(pr.Rewards) * unitDollars,
		StaticMaxFrac:  maxOf(spr.Rewards) / sm.Scenario().Cost.MaxSlope(),
		DynamicMaxFrac: maxOf(pr.Rewards) / dm.Scenario().Cost.MaxSlope(),
		TIPResidue:     tipProfile.ResidueSpread(),
		TDPResidue:     tdpProfile.ResidueSpread(),
		AreaBetween:    area,
	}, nil
}

// Render formats the result.
func (r *Fig78Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7/8 — offline dynamic model (§V-B)\n")
	renderSeries(&sb, "optimal rewards ($0.10)", r.Rewards)
	renderSeries(&sb, "TIP offered load (10 MBps)", r.TIPLoad)
	renderSeries(&sb, "TDP offered load (10 MBps)", r.TDPLoad)
	renderKV(&sb, "TDP cost per user ($/day)", r.TDPCostPerUser, "0.72")
	renderKV(&sb, "TIP cost per user ($/day)", r.TIPCostPerUser, "")
	renderKV(&sb, "max reward / P (static)", r.StaticMaxFrac, "≤ 0.5")
	renderKV(&sb, "max reward / P (dynamic)", r.DynamicMaxFrac, "> 0.5 (barrier broken)")
	renderKV(&sb, "TIP residue spread (GB)", r.TIPResidue, "2623.1 †")
	renderKV(&sb, "TDP residue spread (GB)", r.TDPResidue, "1142.0 †")
	renderKV(&sb, "area between profiles (GB)", r.AreaBetween, "1495.2 †")
	sb.WriteString("  † definitional scale differs; compare ratios (EXPERIMENTS.md)\n")
	return sb.String()
}

// TableXResult carries the online-adjustment study (§V-B online, Table X):
// nominal vs adjusted rewards after the ISP observes 200 MBps instead of
// 230 MBps arriving in period 1, and the cost comparison on the actual
// demand.
type TableXResult struct {
	Original []float64
	Adjusted []float64
	// Period1Original/Adjusted highlight the headline entry (paper: 0.45 → 0.57).
	Period1Original, Period1Adjusted float64
	// CostNominal/CostAdjusted are the daily per-user dollar costs of the
	// two schedules on the actual (200 MBps) demand; paper: 0.66 → 0.63.
	CostNominal, CostAdjusted float64
	ImprovementPct            float64 // paper ≈ 5%
}

// TableX runs the online price-determination algorithm through a full day
// in which period 1 arrives light.
func TableX() (*TableXResult, error) {
	online, err := core.NewOnlineOptimizer(Dynamic48(), core.OnlineConfig{UseDynamic: true})
	if err != nil {
		return nil, err
	}
	nominal := online.Rewards()

	actualPeriod1 := make([]float64, len(waiting.PatienceIndices))
	for j, v := range waiting.Dist48[0] {
		actualPeriod1[j] = v * 20.0 / 23.0 // 230 → 200 MBps, uniformly
	}
	if _, err := online.Advance(actualPeriod1); err != nil {
		return nil, err
	}
	for i := 1; i < 48; i++ {
		if _, err := online.Advance(waiting.Dist48[i/2][:]); err != nil {
			return nil, err
		}
	}
	adjusted := online.Rewards()
	costNominal := online.CostAt(nominal)
	costAdjusted := online.CostAt(adjusted)
	improvement := 0.0
	if costNominal > 0 {
		improvement = 100 * (costNominal - costAdjusted) / costNominal
	}
	return &TableXResult{
		Original:        nominal,
		Adjusted:        adjusted,
		Period1Original: nominal[0],
		Period1Adjusted: adjusted[0],
		CostNominal:     PerUserDollars(costNominal),
		CostAdjusted:    PerUserDollars(costAdjusted),
		ImprovementPct:  improvement,
	}, nil
}

// Render formats the result.
func (r *TableXResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table X — online adjustment after period-1 arrivals drop to 200 MBps\n")
	renderSeries(&sb, "original rewards ($0.10)", r.Original)
	renderSeries(&sb, "adjusted rewards ($0.10)", r.Adjusted)
	renderKV(&sb, "p1 original ($0.10)", r.Period1Original, "0.45")
	renderKV(&sb, "p1 adjusted ($0.10)", r.Period1Adjusted, "0.57 (rises)")
	renderKV(&sb, "cost, nominal schedule ($/user)", r.CostNominal, "0.66")
	renderKV(&sb, "cost, adjusted schedule ($/user)", r.CostAdjusted, "0.63")
	fmt.Fprintf(&sb, "  %-38s %9.2f%%   (paper: ≈5%%)\n", "online improvement", r.ImprovementPct)
	return sb.String()
}
