package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"tdp/internal/core"
	"tdp/internal/parallel"
	"tdp/internal/traffic"
	"tdp/internal/waiting"
)

// Fig3Result carries the waiting-function comparison of Fig. 3: patient
// (β = 0.5) vs impatient (β = 5) at reward $0.049 in a 12-period model
// with unit marginal cost.
type Fig3Result struct {
	DeferTimes       []float64
	Patient          []float64
	Impatient        []float64
	CrossoverDefTime int // first deferral time where patient ≥ impatient
}

// Fig3 evaluates the two curves.
func Fig3() (*Fig3Result, error) {
	const (
		n      = 12
		p      = 0.49 // $0.049 in $0.10 units
		maxRwd = 1    // unit marginal cost of exceeding capacity
	)
	patient, err := waiting.NewPowerLaw(0.5, n, maxRwd)
	if err != nil {
		return nil, err
	}
	impatient, err := waiting.NewPowerLaw(5, n, maxRwd)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{CrossoverDefTime: -1}
	for dt := 1; dt <= n-1; dt++ {
		res.DeferTimes = append(res.DeferTimes, float64(dt))
		pv := patient.Value(p, dt)
		iv := impatient.Value(p, dt)
		res.Patient = append(res.Patient, pv)
		res.Impatient = append(res.Impatient, iv)
		if res.CrossoverDefTime < 0 && pv >= iv {
			res.CrossoverDefTime = dt
		}
	}
	return res, nil
}

// Render formats the result.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 3 — waiting functions, reward $0.049, 12 periods\n")
	renderSeries(&sb, "t (periods deferred)", r.DeferTimes)
	renderSeries(&sb, "patient β=0.5", r.Patient)
	renderSeries(&sb, "impatient β=5", r.Impatient)
	fmt.Fprintf(&sb, "  crossover at t = %d (impatient above for shorter t)\n", r.CrossoverDefTime)
	return sb.String()
}

// Fig45Result carries the §V-A static optimization outputs: Fig. 4's
// optimal rewards and Fig. 5's traffic profile, plus the headline cost
// and evenness metrics.
type Fig45Result struct {
	Rewards        []float64
	TIPUsage       []float64
	TDPUsage       []float64
	TDPCostPerUser float64 // dollars; paper 3.26
	TIPCostPerUser float64 // dollars; paper 4.26
	Savings        float64 // fraction; paper 0.24
	MaxReward      float64 // dollars; paper bound 0.15
	TIPRange       float64 // MBps; paper 200
	TDPRange       float64 // MBps; paper 119
	TIPResidue     float64 // GB; paper 923.4 (definition differs, see EXPERIMENTS.md)
	TDPResidue     float64 // GB; paper 472.5
	AreaBetween    float64 // GB; paper 450.9
}

// Fig4Fig5 solves the §V-A static model and computes all Fig. 4/Fig. 5
// quantities.
func Fig4Fig5() (*Fig45Result, error) {
	scn := Static48()
	model, err := core.NewStaticModel(scn)
	if err != nil {
		return nil, err
	}
	pr, err := model.Solve()
	if err != nil {
		return nil, err
	}
	tipProfile := traffic.NewProfile(scn.TotalDemand())
	tdpProfile := traffic.NewProfile(pr.Usage)
	area, err := traffic.AreaBetween(tipProfile, tdpProfile)
	if err != nil {
		return nil, err
	}
	maxR := 0.0
	for _, r := range pr.Rewards {
		maxR = math.Max(maxR, r)
	}
	return &Fig45Result{
		Rewards:        pr.Rewards,
		TIPUsage:       scn.TotalDemand(),
		TDPUsage:       pr.Usage,
		TDPCostPerUser: PerUserDollars(pr.Cost),
		TIPCostPerUser: PerUserDollars(pr.TIPCost),
		Savings:        pr.Savings(),
		MaxReward:      maxR * unitDollars,
		TIPRange:       tipProfile.PeakToTrough() * 10,
		TDPRange:       tdpProfile.PeakToTrough() * 10,
		TIPResidue:     tipProfile.ResidueSpread(),
		TDPResidue:     tdpProfile.ResidueSpread(),
		AreaBetween:    area,
	}, nil
}

// Render formats the result.
func (r *Fig45Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 4/5 — static 48-period optimization (§V-A)\n")
	renderSeries(&sb, "optimal rewards ($0.10)", r.Rewards)
	renderSeries(&sb, "TIP usage (10 MBps)", r.TIPUsage)
	renderSeries(&sb, "TDP usage (10 MBps)", r.TDPUsage)
	renderKV(&sb, "TIP cost per user ($/day)", r.TIPCostPerUser, "4.26")
	renderKV(&sb, "TDP cost per user ($/day)", r.TDPCostPerUser, "3.26")
	renderKV(&sb, "savings (fraction)", r.Savings, "0.24")
	renderKV(&sb, "max reward ($)", r.MaxReward, "≤ 0.15")
	renderKV(&sb, "TIP peak-to-trough (MBps)", r.TIPRange, "200")
	renderKV(&sb, "TDP peak-to-trough (MBps)", r.TDPRange, "119")
	renderKV(&sb, "TIP residue spread (GB)", r.TIPResidue, "923.4 †")
	renderKV(&sb, "TDP residue spread (GB)", r.TDPResidue, "472.5 †")
	renderKV(&sb, "area between profiles (GB)", r.AreaBetween, "450.9 †")
	sb.WriteString("  † definitional scale differs; compare ratios (EXPERIMENTS.md)\n")
	return sb.String()
}

// Table6Row is one row of Table VI: perturbing period-1 demand in the
// 12-period model.
type Table6Row struct {
	DemandMBps  int     // period-1 demand under TIP, MBps
	PriceChange float64 // Σ|p_base − p_perturbed| ($0.10)
	CostChange  float64 // % cost reduction from re-optimizing vs baseline rewards
}

// Table6Result carries the demand-perturbation study.
type Table6Result struct {
	Rows []Table6Row
	// BaselineRewards is the 220 MBps schedule the perturbations compare
	// against.
	BaselineRewards []float64
}

// Table6 sweeps period-1 demand 180–260 MBps (Table XI distributions)
// and reports Table VI's price- and cost-change columns.
func Table6() (*Table6Result, error) {
	base, err := core.NewStaticModel(Static12())
	if err != nil {
		return nil, err
	}
	basePr, err := base.Solve()
	if err != nil {
		return nil, err
	}
	res := &Table6Result{BaselineRewards: basePr.Rewards}
	for total := 18; total <= 26; total++ {
		if total == 22 {
			continue // the baseline itself
		}
		scn, ok := Static12WithPeriod1Demand(total)
		if !ok {
			return nil, fmt.Errorf("experiments: no Table XI row for %d", total)
		}
		m, err := core.NewStaticModel(scn)
		if err != nil {
			return nil, err
		}
		pr, err := m.Solve()
		if err != nil {
			return nil, err
		}
		var priceChange float64
		for i := range pr.Rewards {
			priceChange += math.Abs(pr.Rewards[i] - basePr.Rewards[i])
		}
		// Cost on the perturbed scenario using stale baseline rewards vs
		// re-optimized rewards.
		stale := m.CostAt(basePr.Rewards)
		var costChange float64
		if stale > 0 {
			costChange = 100 * (pr.Cost - stale) / stale
		}
		res.Rows = append(res.Rows, Table6Row{
			DemandMBps:  total * 10,
			PriceChange: priceChange,
			CostChange:  costChange,
		})
	}
	return res, nil
}

// Render formats the result.
func (r *Table6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table VI — period-1 demand perturbation (12 periods)\n")
	sb.WriteString("  demand(MBps)  priceΔ($0.10)  costΔ(%)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %8d %14.4f %9.3f\n", row.DemandMBps, row.PriceChange, row.CostChange)
	}
	sb.WriteString("  (paper: priceΔ shrinks toward the 220 MBps baseline; costΔ ≤ 0)\n")
	return sb.String()
}

// Fig6Point is one sweep point of Fig. 6.
type Fig6Point struct {
	Scale         float64 // a, multiplying the cost of exceeding capacity
	ResidueSpread float64 // GB under optimized TDP
	OverCapacity  float64 // GB of demand above capacity after TDP
}

// Fig6Result carries the cost-scale sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 sweeps the capacity-exceedance cost scale a and reports the
// residue spread of the optimized traffic profile. The paper's Fig. 6:
// sharp decrease over a ∈ [0.1, 10], then a plateau — TDP never entirely
// evens traffic out.
func Fig6() (*Fig6Result, error) {
	scales := []float64{0.1, 0.3, 1, 3, 10, 30, 100}
	// Each sweep point is an independent 48-period solve on its own
	// scenario and model; fan them across the worker pool.
	points, err := parallel.Map(context.Background(), 0, len(scales), func(i int) (Fig6Point, error) {
		a := scales[i]
		scn := Static48()
		scn.Cost = core.LinearCost(3).Scale(a)
		// User behavior is fixed across the sweep: keep the waiting
		// functions normalized at the baseline (Static48) reward scale.
		// Normalizing at the scaled max marginal cost instead would
		// rescale deferral with a, making the sweep a no-op.
		scn.MaxRewardNorm = staticNorm
		m, err := core.NewStaticModel(scn)
		if err != nil {
			return Fig6Point{}, err
		}
		pr, err := m.Solve()
		if err != nil {
			return Fig6Point{}, err
		}
		profile := traffic.NewProfile(pr.Usage)
		over, err := profile.OverCapacityVolume(scn.Capacity)
		if err != nil {
			return Fig6Point{}, err
		}
		return Fig6Point{
			Scale:         a,
			ResidueSpread: profile.ResidueSpread(),
			OverCapacity:  over,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Points: points}, nil
}

// Render formats the result.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6 — residue spread vs cost of exceeding capacity\n")
	sb.WriteString("  scale a   residue(GB)   over-capacity(GB)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %7.1f %12.1f %15.3f\n", p.Scale, p.ResidueSpread, p.OverCapacity)
	}
	sb.WriteString("  (paper: sharp drop on a ∈ [0.1, 10], plateau for a ≥ 10)\n")
	return sb.String()
}
