// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV–§VI and Appendix I): each exported function runs one
// experiment and returns a structured result carrying both the paper's
// reported values (where applicable) and the measured ones, plus a
// Render method for human-readable output. cmd/tubebench and the root
// bench_test.go drive these.
package experiments

import (
	"tdp/internal/core"
	"tdp/internal/waiting"
)

// Paper simulation constants (§V): money in $0.10 units, demand in
// 10 MBps, ten users behind the bottleneck.
const (
	// usersInSystem converts aggregate cost to the paper's "per user"
	// figures (Table V "typical of a system with ten users").
	usersInSystem = 10
	// unitDollars converts model cost units to dollars.
	unitDollars = 0.10
)

// PerUserDollars converts a model cost (in $0.10 units) into the paper's
// average-daily-cost-per-user dollar figure.
func PerUserDollars(cost float64) float64 {
	return cost * unitDollars / usersInSystem
}

// staticNorm is the waiting-function normalization reward for the static
// §V scenarios: the *maximum possible reward offered* — the paper's $0.15
// bound (half the marginal benefit for linear waiting functions), the
// first of the two readings §II offers for P. Calibration against the
// paper's headline numbers singles this reading out: with P = 1.5 the
// 48-period run lands at $3.23/user (paper $3.26), 24.2% savings (paper
// 24%), and a 119 MBps peak-to-trough (paper 119); with P = 3 it lands at
// $3.70 and 13%.
const staticNorm = 1.5

// Static48 is the §V-A scenario: Table VII demand, 48 half-hour periods,
// A = 180 MBps, f(x) = 3·max(x, 0).
func Static48() *core.Scenario {
	return &core.Scenario{
		Periods:       48,
		Demand:        waiting.Demand48(),
		Betas:         append([]float64(nil), waiting.PatienceIndices...),
		Capacity:      constant(48, 18),
		Cost:          core.LinearCost(3),
		MaxRewardNorm: staticNorm,
	}
}

// Static12 is the Appendix I 12-period scenario: Table VIII demand,
// A = 180 MBps, f slope 3.
func Static12() *core.Scenario {
	return &core.Scenario{
		Periods:       12,
		Demand:        waiting.Demand12(),
		Betas:         append([]float64(nil), waiting.PatienceIndices...),
		Capacity:      constant(12, 18),
		Cost:          core.LinearCost(3),
		MaxRewardNorm: staticNorm,
	}
}

// Dynamic48 is the §V-B offline dynamic scenario: Table VII arrivals,
// constant capacity 210 MBps, marginal over-capacity cost $0.10.
func Dynamic48() *core.Scenario {
	return &core.Scenario{
		Periods:  48,
		Demand:   waiting.Demand48(),
		Betas:    append([]float64(nil), waiting.PatienceIndices...),
		Capacity: constant(48, 21),
		Cost:     core.LinearCost(1),
	}
}

// Static12WithPeriod1Demand returns Static12 with period 1's distribution
// replaced by the Table XI row for the given total (18–26, in 10 MBps).
func Static12WithPeriod1Demand(total int) (*core.Scenario, bool) {
	row, ok := waiting.DistPerturbPeriod1[total]
	if !ok {
		return nil, false
	}
	s := Static12()
	s.Demand[0] = append([]float64(nil), row[:]...)
	return s, true
}

// Static12WaitPerturbPeriod1 returns Static12 with period 1's distribution
// replaced by the Table XIII mis-estimation.
func Static12WaitPerturbPeriod1() *core.Scenario {
	s := Static12()
	s.Demand[0] = append([]float64(nil), waiting.DistWaitPerturbPeriod1[:]...)
	return s
}

// Static12WaitPerturbAll returns Static12 with every period's distribution
// replaced by Table XV.
func Static12WaitPerturbAll() *core.Scenario {
	s := Static12()
	for i := range s.Demand {
		s.Demand[i] = append([]float64(nil), waiting.DistWaitPerturbAll[i][:]...)
	}
	return s
}

func constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
