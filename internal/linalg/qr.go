package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n.
type QR struct {
	qr    *Matrix   // packed R (upper triangle) and Householder vectors (below)
	rdiag []float64 // diagonal of R
}

// FactorQR computes the Householder QR factorization of a (m ≥ n required).
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("qr of %dx%d (need rows ≥ cols): %w", m, n, ErrDimension)
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (effectively) zero diagonal entries,
// i.e. the columns are linearly independent up to roundoff.
func (f *QR) FullRank() bool {
	var scale float64
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return len(f.rdiag) == 0
	}
	tol := 1e-12 * scale * float64(max(f.qr.Rows(), f.qr.Cols()))
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve finds the least-squares solution of A·x ≈ b.
// It returns ErrSingular if A is column-rank-deficient.
func (f *QR) Solve(b Vector) (Vector, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("qr solve rhs %d, want %d: %w", len(b), m, ErrDimension)
	}
	if !f.FullRank() {
		return nil, fmt.Errorf("qr solve: %w", ErrSingular)
	}
	y := b.Clone()
	// Compute Qᵀ·b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min‖A·x−b‖₂ directly (factor + solve).
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
