package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -1, 0.5}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := Vector{5, 1, 3.5}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
	diff, err := sum.Sub(w)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i := range v {
		if !almostEqual(diff[i], v[i], 1e-15) {
			t.Errorf("Sub[%d] = %v, want %v", i, diff[i], v[i])
		}
	}
}

func TestVectorDimensionErrors(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{1, 2, 3}
	if _, err := v.Add(w); !errors.Is(err, ErrDimension) {
		t.Errorf("Add: err = %v, want ErrDimension", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimension) {
		t.Errorf("Sub: err = %v, want ErrDimension", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimension) {
		t.Errorf("Dot: err = %v, want ErrDimension", err)
	}
	if err := v.AXPY(2, w); !errors.Is(err, ErrDimension) {
		t.Errorf("AXPY: err = %v, want ErrDimension", err)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	d, err := v.Dot(v)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if d != 25 {
		t.Errorf("Dot = %v, want 25", d)
	}
	if n := v.Norm2(); !almostEqual(n, 5, 1e-15) {
		t.Errorf("Norm2 = %v, want 5", n)
	}
	if n := v.NormInf(); n != 4 {
		t.Errorf("NormInf = %v, want 4", n)
	}
}

func TestVectorNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow; the scaled algorithm must not.
	v := Vector{1e200, 1e200}
	got := v.Norm2()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || !almostEqual(got, want, 1e-14) {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestVectorNorm2Zero(t *testing.T) {
	if n := (Vector{0, 0, 0}).Norm2(); n != 0 {
		t.Errorf("Norm2 of zero vector = %v, want 0", n)
	}
	if n := (Vector{}).Norm2(); n != 0 {
		t.Errorf("Norm2 of empty vector = %v, want 0", n)
	}
}

func TestVectorScaleAXPY(t *testing.T) {
	v := Vector{1, -2, 3}
	s := v.Scale(-2)
	want := Vector{-2, 4, -6}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	u := Vector{1, 1, 1}
	if err := u.AXPY(2, v); err != nil {
		t.Fatalf("AXPY: %v", err)
	}
	want = Vector{3, -3, 7}
	for i := range want {
		if u[i] != want[i] {
			t.Errorf("AXPY[%d] = %v, want %v", i, u[i], want[i])
		}
	}
}

func TestVectorMaxMinSum(t *testing.T) {
	v := Vector{2, -7, 5, 5, -7}
	if mx, i := v.Max(); mx != 5 || i != 2 {
		t.Errorf("Max = (%v,%d), want (5,2)", mx, i)
	}
	if mn, i := v.Min(); mn != -7 || i != 1 {
		t.Errorf("Min = (%v,%d), want (-7,1)", mn, i)
	}
	if s := v.Sum(); s != -2 {
		t.Errorf("Sum = %v, want -2", s)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v[0] = %v", v[0])
	}
}

// Property: the Cauchy–Schwarz inequality |v·w| ≤ ‖v‖‖w‖ holds.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := Vector{clampF(a), clampF(b), clampF(c)}
		w := Vector{clampF(d), clampF(e), clampF(g)}
		dot, err := v.Dot(w)
		if err != nil {
			return false
		}
		return math.Abs(dot) <= v.Norm2()*w.Norm2()*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality ‖v+w‖ ≤ ‖v‖+‖w‖.
func TestVectorTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := Vector{clampF(a), clampF(b), clampF(c)}
		w := Vector{clampF(d), clampF(e), clampF(g)}
		sum, err := v.Add(w)
		if err != nil {
			return false
		}
		return sum.Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary quick-generated floats into a sane finite range.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
