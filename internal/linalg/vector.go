// Package linalg provides small dense linear-algebra primitives used by the
// optimization stack: vectors, matrices, LU factorization with partial
// pivoting, Householder QR, linear solves, and least squares.
//
// The package is deliberately minimal — sizes in this project are tiny
// (tens of variables), so clarity and numerical robustness win over
// cache-blocked performance.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand dimensions are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d and %d: %w", len(v), len(w), ErrDimension)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d and %d: %w", len(v), len(w), ErrDimension)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns c*v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AXPY computes v += a*w in place.
func (v Vector) AXPY(a float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("axpy %d and %d: %w", len(v), len(w), ErrDimension)
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return nil
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d and %d: %w", len(v), len(w), ErrDimension)
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm, guarding against overflow.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum entry and its index. It panics on empty vectors.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum entry and its index. It panics on empty vectors.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}
