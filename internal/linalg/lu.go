package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix // packed L (unit lower) and U
	piv  []int   // row permutation
	sign int     // permutation sign, for determinants
}

// FactorLU computes the LU factorization of a square matrix a.
// It returns ErrSingular when a pivot is effectively zero.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("lu of %dx%d: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest entry in column k.
		p := k
		best := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				best, p = a, i
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("pivot %d: %w", k, ErrSingular)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("lu solve rhs %d, want %d: %w", len(b), n, ErrDimension)
	}
	x := make(Vector, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear solves A·x = b directly (factor + solve).
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
