package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := Vector{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := FactorLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("FactorLU singular: err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("FactorLU nonsquare: err = %v, want ErrDimension", err)
	}
}

func TestLUSolveWrongRHS(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if _, err := f.Solve(Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("Solve wrong rhs: err = %v, want ErrDimension", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{3, 0},
		{0, 2},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if d := f.Det(); !almostEqual(d, 6, 1e-14) {
		t.Errorf("Det = %v, want 6", d)
	}
	// Permuted rows flip nothing about the determinant of the original.
	b, _ := NewMatrixFromRows([][]float64{
		{0, 2},
		{3, 0},
	})
	fb, err := FactorLU(b)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if d := fb.Det(); !almostEqual(d, -6, 1e-14) {
		t.Errorf("Det = %v, want -6", d)
	}
}

func TestLUPivotingStability(t *testing.T) {
	// A matrix that requires row exchanges for a stable factorization.
	a, _ := NewMatrixFromRows([][]float64{
		{1e-20, 1},
		{1, 1},
	})
	x, err := SolveLinear(a, Vector{1, 2})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	// True solution is approximately x = (1, 1).
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 1, 1e-9) {
		t.Errorf("x = %v, want ≈(1,1)", x)
	}
}

// Property: solving A·x = A·v recovers v for random well-conditioned A.
func TestLURoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		v := make(Vector, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(v)
		if err != nil {
			return false
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(x[i]-v[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
