package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveSquare(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	x, err := LeastSquares(a, Vector{5, 10})
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	want := Vector{1, 3}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t to exact data; the LS solution must recover it.
	ts := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(ts), 2)
	b := make(Vector, len(ts))
	for i, tt := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		b[i] = 2 + 3*tt
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("fit = %v, want (2,3)", x)
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares solution must be orthogonal to the
	// column space: Aᵀ(Ax−b) = 0.
	a, _ := NewMatrixFromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
	})
	b := Vector{1, 0, 2}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	ax, _ := a.MulVec(x)
	r, _ := ax.Sub(b)
	atr, _ := a.TransMulVec(r)
	if atr.NormInf() > 1e-12 {
		t.Errorf("Aᵀr = %v, want ≈0", atr)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("FactorQR wide: err = %v, want ErrDimension", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatalf("FactorQR: %v", err)
	}
	if f.FullRank() {
		t.Error("FullRank = true for rank-1 matrix")
	}
	if _, err := f.Solve(Vector{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve rank-deficient: err = %v, want ErrSingular", err)
	}
}

func TestQRSolveWrongRHS(t *testing.T) {
	f, err := FactorQR(Identity(3))
	if err != nil {
		t.Fatalf("FactorQR: %v", err)
	}
	if _, err := f.Solve(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("Solve wrong rhs: err = %v, want ErrDimension", err)
	}
}

// Property: QR and LU agree on random square nonsingular systems.
func TestQRMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveLinear(a, b)
		x2, err2 := LeastSquares(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
