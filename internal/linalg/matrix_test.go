package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Errorf("err = %v, want ErrDimension", err)
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("dims = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestMatrixMulVec(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := m.MulVec(Vector{1, 0, -1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	want := Vector{-2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := m.MulVec(Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("MulVec short: err = %v, want ErrDimension", err)
	}
}

func TestMatrixTransMulVec(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := m.TransMulVec(Vector{1, 1, 1})
	if err != nil {
		t.Fatalf("TransMulVec: %v", err)
	}
	want := Vector{9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TransMulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{2, -1}, {7, 0.5}})
	p, err := m.Mul(Identity(2))
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != m.At(i, j) {
				t.Errorf("A·I differs at (%d,%d)", i, j)
			}
		}
	}
	if _, err := m.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("Mul mismatched: err = %v, want ErrDimension", err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Errorf("transpose differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 0 {
		t.Errorf("Clone aliases original")
	}
}

func TestMatrixMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, -9}, {3, 4}})
	if got := m.MaxAbs(); got != 9 {
		t.Errorf("MaxAbs = %v, want 9", got)
	}
}

// Property: (Aᵀ)ᵀ = A and (A·v) via MulVec equals Aᵀ TransMulVec identity.
func TestMatrixTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		// Aᵀ·v computed two ways.
		v := make(Vector, rows)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		a, err1 := m.TransMulVec(v)
		b, err2 := m.Transpose().MulVec(v)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
