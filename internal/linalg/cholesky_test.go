package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]] is SPD; solve A·x = (8, 7) → x = (1.4, 1.4)? Check:
	// 4x+2y=8, 2x+3y=7 → x=1.25, y=1.5.
	a, _ := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	x, err := SolveSPD(a, Vector{8, 7})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !almostEqual(x[0], 1.25, 1e-12) || !almostEqual(x[1], 1.5, 1e-12) {
		t.Errorf("x = %v, want (1.25, 1.5)", x)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	indefinite, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := FactorCholesky(indefinite); !errors.Is(err, ErrSingular) {
		t.Errorf("indefinite: err = %v, want ErrSingular", err)
	}
	if _, err := FactorCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("non-square: err = %v, want ErrDimension", err)
	}
	zero := NewMatrix(2, 2)
	if _, err := FactorCholesky(zero); !errors.Is(err, ErrSingular) {
		t.Errorf("zero matrix: err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolveWrongRHS(t *testing.T) {
	f, err := FactorCholesky(Identity(3))
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	if _, err := f.Solve(Vector{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("short rhs: err = %v, want ErrDimension", err)
	}
}

// Property: for random SPD matrices (JᵀJ + λI form, as in LM), Cholesky and
// LU agree and round-trip A·x = A·v.
func TestCholeskyMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		j := NewMatrix(n+2, n)
		for r := 0; r < n+2; r++ {
			for c := 0; c < n; c++ {
				j.Set(r, c, rng.NormFloat64())
			}
		}
		a, err := j.Transpose().Mul(j)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.1) // damping, as LM does
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveSPD(a, b)
		x2, err2 := SolveLinear(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
