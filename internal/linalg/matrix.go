package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(r), cols, ErrDimension)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("mulvec %dx%d by %d: %w", m.rows, m.cols, len(v), ErrDimension)
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// TransMulVec returns mᵀ·v.
func (m *Matrix) TransMulVec(v Vector) (Vector, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("transmulvec %dx%d by %d: %w", m.rows, m.cols, len(v), ErrDimension)
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out, nil
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, x := range m.data {
		if a := math.Abs(x); a > best {
			best = a
		}
	}
	return best
}
