package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix: A = L·Lᵀ. It is the natural factorization for
// the damped normal equations Levenberg–Marquardt solves each iteration —
// half the work of LU and numerically safer on SPD systems.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a. It returns
// ErrSingular if a is not (numerically) positive definite and ErrDimension
// if it is not square. Only the lower triangle of a is read, so symmetry
// is assumed rather than verified.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("cholesky of %dx%d: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("pivot %d = %v: %w", j, d, ErrSingular)
		}
		root := math.Sqrt(d)
		l.Set(j, j, root)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/root)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b via forward/back substitution on the factor.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("cholesky solve rhs %d, want %d: %w", len(b), n, ErrDimension)
	}
	// L·y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a symmetric positive-definite system directly
// (factor + solve).
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
