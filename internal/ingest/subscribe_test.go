package ingest

import (
	"fmt"
	"sync"
	"testing"

	"tdp/internal/obs"
)

// collect accumulates every delivered delta into a per-class total,
// safe for the concurrent synchronous delivery the engine performs.
type collect struct {
	mu     sync.Mutex
	total  []float64
	calls  int
	lastMB []float64
}

func (c *collect) fn(byClass []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == nil {
		c.total = make([]float64, len(byClass))
		c.lastMB = make([]float64, len(byClass))
	}
	copy(c.lastMB, byClass)
	for i, v := range byClass {
		c.total[i] += v
	}
	c.calls++
}

func TestSubscribeDeliversRecordDeltas(t *testing.T) {
	e, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var c collect
	id := e.Subscribe(c.fn)
	if id == 0 {
		t.Fatal("Subscribe returned zero token")
	}
	if e.Subscribers() != 1 {
		t.Fatalf("Subscribers() = %d, want 1", e.Subscribers())
	}
	if err := e.Record("alice", "web", 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Record("bob", "video", 2.5); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls != 2 {
		t.Fatalf("calls = %d, want 2", c.calls)
	}
	want := []float64{10, 0, 2.5} // web, ftp, video
	for i, v := range want {
		if c.total[i] != v {
			t.Fatalf("class %d total = %v, want %v", i, c.total[i], v)
		}
	}
	if c.lastMB[2] != 2.5 || c.lastMB[0] != 0 {
		t.Fatalf("last delta %v, want only video set", c.lastMB)
	}
}

// TestSubscribeDeliversBatchDeltas exercises both RecordBatch paths:
// shards=1 forces the grouped per-shard path for any batch, a large
// shard count keeps small batches on the per-report path.
func TestSubscribeDeliversBatchDeltas(t *testing.T) {
	for _, shards := range []int{1, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewEngine(classes3(), shards)
			if err != nil {
				t.Fatal(err)
			}
			var c collect
			e.Subscribe(c.fn)
			batch := []Report{
				{User: "alice", Class: "web", VolumeMB: 1},
				{User: "bob", Class: "web", VolumeMB: 2},
				{User: "carol", Class: "ftp", VolumeMB: 4},
			}
			if err := e.RecordBatch(batch); err != nil {
				t.Fatal(err)
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.calls != 1 {
				t.Fatalf("calls = %d, want one delta per batch", c.calls)
			}
			want := []float64{3, 4, 0}
			for i, v := range want {
				if c.total[i] != v {
					t.Fatalf("class %d total = %v, want %v", i, c.total[i], v)
				}
			}
		})
	}
}

func TestSubscribeRejectedBatchDeliversNothing(t *testing.T) {
	e, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var c collect
	e.Subscribe(c.fn)
	bad := []Report{
		{User: "alice", Class: "web", VolumeMB: 1},
		{User: "bob", Class: "nosuch", VolumeMB: 2},
	}
	if err := e.RecordBatch(bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls != 0 {
		t.Fatalf("rejected batch delivered %d deltas", c.calls)
	}
}

func TestUnsubscribe(t *testing.T) {
	e, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var a, b collect
	idA := e.Subscribe(a.fn)
	idB := e.Subscribe(b.fn)
	if e.Subscribers() != 2 {
		t.Fatalf("Subscribers() = %d, want 2", e.Subscribers())
	}
	if !e.Unsubscribe(idA) {
		t.Fatal("Unsubscribe(idA) = false")
	}
	if e.Unsubscribe(idA) {
		t.Fatal("double Unsubscribe succeeded")
	}
	if err := e.Record("alice", "web", 1); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	callsA := a.calls
	a.mu.Unlock()
	b.mu.Lock()
	callsB := b.calls
	b.mu.Unlock()
	if callsA != 0 || callsB != 1 {
		t.Fatalf("calls after unsubscribe: a=%d b=%d, want 0/1", callsA, callsB)
	}
	if !e.Unsubscribe(idB) {
		t.Fatal("Unsubscribe(idB) = false")
	}
	if e.Subscribers() != 0 {
		t.Fatalf("Subscribers() = %d, want 0", e.Subscribers())
	}
	if e.Subscribe(nil) != 0 {
		t.Fatal("Subscribe(nil) returned a token")
	}
}

// TestSubscribeConservation is the ingest→fitter subscription race
// test: many goroutines mix Record and RecordBatch while a subscriber
// folds deltas into a striped accumulator, and the folded totals must
// equal the engine's own accounting exactly (every delta delivered
// once, none lost, none doubled). Run under -race in CI.
func TestSubscribeConservation(t *testing.T) {
	e, err := NewEngine(classes3(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]*obs.FloatAdder, 3)
	for i := range sums {
		sums[i] = obs.NewFloatAdder()
	}
	e.Subscribe(func(byClass []float64) {
		for i, v := range byClass {
			if v != 0 {
				sums[i].Add(v)
			}
		}
	})
	const G, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cls := classes3()
			for i := 0; i < perG; i++ {
				u := fmt.Sprintf("u%d-%d", g, i%17)
				if i%3 == 0 {
					batch := []Report{
						{User: u, Class: cls[i%3], VolumeMB: 1},
						{User: u + "x", Class: cls[(i+1)%3], VolumeMB: 2},
					}
					if err := e.RecordBatch(batch); err != nil {
						t.Error(err)
						return
					}
				} else if err := e.Record(u, cls[i%3], 0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want := e.ClassTotals()
	for i := range want {
		if got := sums[i].Value(); got != want[i] {
			t.Fatalf("class %d: subscriber folded %v, engine accounted %v", i, got, want[i])
		}
	}
}

// TestSubscribeNotifyAllocs pins the delivery path: with a subscriber
// attached, Record and RecordBatch allocate nothing for the delta
// (buffers come from the pool and never escape).
func TestSubscribeNotifyAllocs(t *testing.T) {
	e, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	e.Subscribe(func(byClass []float64) {
		for _, v := range byClass {
			sink += v
		}
	})
	// Warm the shard maps and the buffer pool first.
	if err := e.Record("alice", "web", 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := e.Record("alice", "web", 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Record with subscriber allocates %.1f per call, want 0", allocs)
	}
	// RecordBatch itself allocates its index scratch; the delta path
	// must add nothing on top of that baseline.
	batch := []Report{
		{User: "alice", Class: "web", VolumeMB: 1},
		{User: "alice", Class: "ftp", VolumeMB: 1},
	}
	bare, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(1000, func() {
		if err := bare.RecordBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	allocs = testing.AllocsPerRun(1000, func() {
		if err := e.RecordBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > base {
		t.Errorf("RecordBatch delta path adds %.1f allocs per call (with %.1f, without %.1f), want 0",
			allocs-base, allocs, base)
	}
	_ = sink
}

func TestSubscribeDeltasMetric(t *testing.T) {
	e, err := NewEngine(classes3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.Instrument(reg)
	e.Subscribe(func([]float64) {})
	if err := e.Record("alice", "web", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordBatch([]Report{{User: "b", Class: "ftp", VolumeMB: 1}}); err != nil {
		t.Fatal(err)
	}
	m := e.metrics()
	if got := m.deltas.Value(); got != 2 {
		t.Fatalf("ingest_deltas_total = %d, want 2", got)
	}
}
