package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

func classes3() []string { return []string{"web", "ftp", "video"} }

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 4); !errors.Is(err, ErrBadReport) {
		t.Errorf("no classes: err = %v, want ErrBadReport", err)
	}
	if _, err := NewEngine([]string{"a", "a"}, 4); !errors.Is(err, ErrBadReport) {
		t.Errorf("dup class: err = %v, want ErrBadReport", err)
	}
	if _, err := NewEngine([]string{""}, 4); !errors.Is(err, ErrBadReport) {
		t.Errorf("empty class: err = %v, want ErrBadReport", err)
	}
}

func TestShardCountNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32}, {4096, 1024},
	} {
		e, err := NewEngine(classes3(), tc.in)
		if err != nil {
			t.Fatalf("NewEngine(%d): %v", tc.in, err)
		}
		if e.NumShards() != tc.want {
			t.Errorf("NumShards(%d) = %d, want %d", tc.in, e.NumShards(), tc.want)
		}
	}
	e, _ := NewEngine(classes3(), 0)
	if n := e.NumShards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("default shards %d not a positive power of two", n)
	}
}

func TestRecordValidation(t *testing.T) {
	e, _ := NewEngine(classes3(), 4)
	if err := e.Record("", "web", 1); !errors.Is(err, ErrBadReport) {
		t.Errorf("empty user: err = %v", err)
	}
	if err := e.Record("u", "smtp", 1); !errors.Is(err, ErrBadReport) {
		t.Errorf("unknown class: err = %v", err)
	}
	if err := e.Record("u", "web", -1); !errors.Is(err, ErrBadReport) {
		t.Errorf("negative volume: err = %v", err)
	}
	if err := e.Record("u", "web", math.NaN()); !errors.Is(err, ErrBadReport) {
		t.Errorf("NaN volume: err = %v", err)
	}
}

func TestAccounting(t *testing.T) {
	e, err := NewEngine(classes3(), 8)
	if err != nil {
		t.Fatal(err)
	}
	must := func(u, c string, v float64) {
		t.Helper()
		if err := e.Record(u, c, v); err != nil {
			t.Fatalf("Record(%s,%s,%v): %v", u, c, v, err)
		}
	}
	must("user1", "web", 10)
	must("user1", "web", 5)
	must("user2", "video", 100)
	must("user2", "ftp", 20)

	want := []float64{15, 20, 100}
	got := e.ClassTotals()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ClassTotals[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	ut := e.UserTotals()
	if ut["user1"] != 15 || ut["user2"] != 120 {
		t.Errorf("UserTotals = %v", ut)
	}
	if u := e.Users(); len(u) != 2 || u[0] != "user1" || u[1] != "user2" {
		t.Errorf("Users = %v", u)
	}
	if n := e.Accepted(); n != 4 {
		t.Errorf("Accepted = %d, want 4", n)
	}

	ct, pu := e.Rollover()
	for i := range want {
		if ct[i] != want[i] {
			t.Errorf("Rollover class totals %v, want %v", ct, want)
		}
	}
	if pu["user1"] != 15 || pu["user2"] != 120 {
		t.Errorf("Rollover user totals = %v", pu)
	}
	for _, v := range e.ClassTotals() {
		if v != 0 {
			t.Error("counters not cleared by Rollover")
		}
	}
	if n := e.Accepted(); n != 0 {
		t.Errorf("Accepted after rollover = %d, want 0", n)
	}
}

func TestRecordBatchAllOrNothing(t *testing.T) {
	e, _ := NewEngine(classes3(), 4)
	batch := []Report{
		{User: "a", Class: "web", VolumeMB: 1},
		{User: "b", Class: "ftp", VolumeMB: 2},
		{User: "c", Class: "bogus", VolumeMB: 3}, // invalid → reject whole batch
	}
	if err := e.RecordBatch(batch); !errors.Is(err, ErrBadReport) {
		t.Fatalf("bad batch: err = %v, want ErrBadReport", err)
	}
	for _, v := range e.ClassTotals() {
		if v != 0 {
			t.Fatal("rejected batch left residue")
		}
	}
	if err := e.RecordBatch(batch[:2]); err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	ct := e.ClassTotals()
	if ct[0] != 1 || ct[1] != 2 || ct[2] != 0 {
		t.Errorf("ClassTotals = %v", ct)
	}
	if err := e.RecordBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestConcurrentRecordRollover hammers Record/RecordBatch against
// Rollover under -race and asserts no report is lost or double-counted:
// the sum of every closed period's totals plus the final totals must
// equal exactly what the writers sent (integral volumes, so float
// addition is exact regardless of interleaving).
func TestConcurrentRecordRollover(t *testing.T) {
	e, _ := NewEngine(classes3(), 8)
	const writers = 8
	const perWriter = 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user%02d", w)
			for i := 0; i < perWriter; i++ {
				if i%10 == 0 {
					batch := []Report{
						{User: user, Class: "web", VolumeMB: 1},
						{User: "shared", Class: "ftp", VolumeMB: 1},
					}
					if err := e.RecordBatch(batch); err != nil {
						t.Error(err)
						return
					}
					i++ // the batch carried this user's report for slot i too
					continue
				}
				if err := e.Record(user, "web", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	var closedSum float64
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ct, _ := e.Rollover()
			for _, v := range ct {
				closedSum += v
			}
		}
	}()
	wg.Wait()
	<-done
	for _, v := range e.ClassTotals() {
		closedSum += v
	}

	// Each writer issues perWriter "slots": 1 report per slot, plus one
	// extra "shared" report on every 10th slot (which consumes 2 slots).
	var want float64
	for w := 0; w < writers; w++ {
		slots := 0
		reports := 0
		for slots < perWriter {
			if slots%10 == 0 {
				reports += 2
				slots += 2
			} else {
				reports++
				slots++
			}
		}
		want += float64(reports)
	}
	if closedSum != want {
		t.Fatalf("accounted %v MB across rollovers, want %v (lost or duplicated reports)", closedSum, want)
	}
}
