package ingest

import (
	"errors"
	"testing"
)

func wireEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := NewEngine([]string{"web", "ftp"}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestApplyWireAllOrNothing(t *testing.T) {
	users := []string{"alice", "bob"}
	cases := map[string][]WireRecord{
		"user index out of range":  {{User: 0, Class: 0, VolumeMB: 1}, {User: 2, Class: 0, VolumeMB: 1}},
		"negative user index":      {{User: -1, Class: 0, VolumeMB: 1}},
		"class index out of range": {{User: 0, Class: 0, VolumeMB: 1}, {User: 1, Class: 2, VolumeMB: 1}},
		"negative volume":          {{User: 0, Class: 0, VolumeMB: 5}, {User: 0, Class: 1, VolumeMB: -1}},
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			e := wireEngine(t, 4)
			if err := e.ApplyWire(users, nil, recs); !errors.Is(err, ErrBadReport) {
				t.Fatalf("ApplyWire: %v, want ErrBadReport", err)
			}
			// All-or-nothing: the valid prefix must not have been applied.
			if got := e.Accepted(); got != 0 {
				t.Fatalf("invalid frame applied %d records", got)
			}
			for _, v := range e.ClassTotals() {
				//lint:allow floateq untouched counters are exactly zero
				if v != 0 {
					t.Fatalf("invalid frame left totals %v", e.ClassTotals())
				}
			}
		})
	}
}

func TestApplyWireEmptyUserRejected(t *testing.T) {
	e := wireEngine(t, 4)
	err := e.ApplyWire([]string{""}, nil, []WireRecord{{User: 0, Class: 0, VolumeMB: 1}})
	if !errors.Is(err, ErrBadReport) {
		t.Fatalf("empty user: %v, want ErrBadReport", err)
	}
}

func TestApplyWireHashLengthMismatch(t *testing.T) {
	e := wireEngine(t, 4)
	err := e.ApplyWire([]string{"alice", "bob"}, []uint32{UserHash("alice")},
		[]WireRecord{{User: 0, Class: 0, VolumeMB: 1}})
	if !errors.Is(err, ErrBadReport) {
		t.Fatalf("short hash table: %v, want ErrBadReport", err)
	}
}

// TestApplyWireHashedAndUnhashedAgree: passing the cached hashes must
// be a pure optimization — identical placement and totals.
func TestApplyWireHashedAndUnhashedAgree(t *testing.T) {
	users := []string{"alice", "bob", "carol", "dave"}
	hashes := make([]uint32, len(users))
	for i, u := range users {
		hashes[i] = UserHash(u)
	}
	recs := []WireRecord{
		{User: 0, Class: 0, VolumeMB: 1.25}, {User: 1, Class: 1, VolumeMB: 2},
		{User: 2, Class: 0, VolumeMB: 0.5}, {User: 0, Class: 1, VolumeMB: 3},
		{User: 3, Class: 0, VolumeMB: 7}, {User: 2, Class: 1, VolumeMB: 0.125},
	}
	withH, withoutH := wireEngine(t, 8), wireEngine(t, 8)
	if err := withH.ApplyWire(users, hashes, recs); err != nil {
		t.Fatal(err)
	}
	if err := withoutH.ApplyWire(users, nil, recs); err != nil {
		t.Fatal(err)
	}
	a, b := withH.UserTotals(), withoutH.UserTotals()
	if len(a) != len(b) {
		t.Fatalf("hashed path accounted %d users, unhashed %d", len(a), len(b))
	}
	for u, want := range b {
		//lint:allow floateq identical operations must produce identical bits
		if a[u] != want {
			t.Fatalf("user %s: hashed %v, unhashed %v", u, a[u], want)
		}
	}
}

// TestApplyWireEmptyFrame: a record-less frame is a no-op, not an error
// (v1 encoders can emit empty keep-alive frames).
func TestApplyWireEmptyFrame(t *testing.T) {
	e := wireEngine(t, 4)
	if err := e.ApplyWire(nil, nil, nil); err != nil {
		t.Fatalf("empty frame: %v", err)
	}
	if e.Accepted() != 0 {
		t.Fatalf("empty frame accounted %d records", e.Accepted())
	}
}
