package ingest

import (
	"fmt"
	"sync/atomic"
	"testing"

	"tdp/internal/obs"
)

func benchUsers(n int) []string {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("user%06d", i)
	}
	return users
}

// BenchmarkIngestParallel measures concurrent Record throughput as the
// shard count grows: shards=1 is the original single-global-mutex
// design, the larger counts are the lock-striped engine. Run with
// several GOMAXPROCS values to see the scaling (on a 1-core box all
// variants serialize and the numbers converge):
//
//	GOMAXPROCS=8 go test -bench IngestParallel -cpu 1,4,8 ./internal/ingest
func BenchmarkIngestParallel(b *testing.B) {
	users := benchUsers(4096)
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := NewEngine(classes3(), shards)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct stride per goroutine spreads users across
				// shards the way independent gateways would.
				j := int(next.Add(1)) * 7919
				for pb.Next() {
					u := users[j&(len(users)-1)]
					j++
					if err := eng.Record(u, "web", 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkUsageBatch measures per-report cost of batched ingestion at
// increasing batch sizes: one lock acquisition per touched shard per
// batch, versus one per report in the batch=1 row.
func BenchmarkUsageBatch(b *testing.B) {
	users := benchUsers(4096)
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			eng, err := NewEngine(classes3(), 64)
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]Report, size)
			for i := range batch {
				batch[i] = Report{
					User:     users[(i*131)&(len(users)-1)],
					Class:    classes3()[i%3],
					VolumeMB: 1,
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.RecordBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkIngestRollover measures one full accounting period: a burst
// of batched reports followed by the atomic rollover with merged totals.
func BenchmarkIngestRollover(b *testing.B) {
	users := benchUsers(1024)
	eng, err := NewEngine(classes3(), 64)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Report, 1024)
	for i := range batch {
		batch[i] = Report{User: users[i], Class: classes3()[i%3], VolumeMB: 2.5}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := eng.RecordBatch(batch); err != nil {
			b.Fatal(err)
		}
		ct, _ := eng.Rollover()
		if ct[0] == 0 {
			b.Fatal("empty rollover")
		}
	}
}

// BenchmarkIngestSubscribe measures the marginal cost of the delta
// subscription path: Record and RecordBatch with 0 subscribers (the
// single atomic-pointer load every caller pays) versus 1 subscriber
// folding the pooled per-class vector into a striped accumulator —
// the exact consumer shape of the tube streaming profiler.
func BenchmarkIngestSubscribe(b *testing.B) {
	users := benchUsers(4096)
	batch := make([]Report, 64)
	for i := range batch {
		batch[i] = Report{
			User:     users[(i*131)&(len(users)-1)],
			Class:    classes3()[i%3],
			VolumeMB: 1,
		}
	}
	mkEngine := func(b *testing.B, subs int) *Engine {
		eng, err := NewEngine(classes3(), 64)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < subs; s++ {
			sum := obs.NewFloatAdder()
			eng.Subscribe(func(byClass []float64) {
				for _, v := range byClass {
					if v != 0 {
						sum.Add(v)
					}
				}
			})
		}
		return eng
	}
	for _, subs := range []int{0, 1} {
		b.Run(fmt.Sprintf("record/subs=%d", subs), func(b *testing.B) {
			eng := mkEngine(b, subs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.Record(users[(i*7919)&(len(users)-1)], "web", 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch64/subs=%d", subs), func(b *testing.B) {
			eng := mkEngine(b, subs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.RecordBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
