// Delta subscriptions: the push side of the ingestion engine.
//
// The accounting maps answer "how much, per user, this period" on
// demand; the streaming profiling engine instead needs to see usage
// *as it arrives*, per class, to keep its estimate fresh between period
// closes. Subscribe registers a callback that receives the per-class
// volume vector of every accepted report or batch — O(1) amortized work
// per report and zero allocations on the hot path (the vector comes
// from a pool and is only valid during the call).
//
// Delivery semantics: callbacks run synchronously on the recording
// goroutine AFTER the shard locks are released, so they must be fast
// and must not call back into the engine's locked paths. Because
// delivery is outside the shard critical sections, the subscription
// stream is NOT ordered against Rollover: a delta delivered just after
// a rollover may describe usage accounted just before it (or, for a
// multi-shard batch racing the rollover, split across the cut). The
// authoritative period totals remain Rollover's; subscribers are a live
// view — the tube streaming profiler accumulates them into an advisory
// sketch and reconciles against the rollover cut at each period close
// (the skew is exported as a metric).
package ingest

import (
	"sync"
	"sync/atomic"
)

// DeltaFunc receives the per-class volume sums (ordered as Classes())
// of one accepted report or batch. The slice is pooled scratch: it is
// only valid for the duration of the call and must not be retained or
// mutated.
type DeltaFunc func(byClass []float64)

// subscriber pairs a callback with its registration id.
type subscriber struct {
	id int64
	fn DeltaFunc
}

// subscriptions is the copy-on-write registry hanging off the engine:
// the notify path loads one atomic pointer (nil ⇒ no subscribers ⇒ no
// delta accumulation at all), Subscribe/Unsubscribe swap in a fresh
// copy under subMu.
type subscriptions struct {
	subMu  sync.Mutex                    // serializes Subscribe/Unsubscribe
	subs   atomic.Pointer[[]subscriber]  // read lock-free by notify
	nextID atomic.Int64
	pool   sync.Pool // *[]float64 delta buffers, len == len(classes)
}

// Subscribe registers fn to receive the per-class delta of every
// subsequently accepted report and batch, returning a token for
// Unsubscribe. Callbacks run synchronously on recording goroutines:
// several may run concurrently (one per in-flight Record/RecordBatch),
// so fn must be safe for concurrent use.
func (e *Engine) Subscribe(fn DeltaFunc) int64 {
	if fn == nil {
		return 0
	}
	e.sub.subMu.Lock()
	defer e.sub.subMu.Unlock()
	id := e.sub.nextID.Add(1)
	var cur []subscriber
	if p := e.sub.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]subscriber, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = subscriber{id: id, fn: fn}
	e.sub.subs.Store(&next)
	return id
}

// Unsubscribe removes a subscription by its token. It returns false for
// unknown (or already removed) tokens. Deliveries already in flight on
// other goroutines may still complete after Unsubscribe returns.
func (e *Engine) Unsubscribe(id int64) bool {
	e.sub.subMu.Lock()
	defer e.sub.subMu.Unlock()
	p := e.sub.subs.Load()
	if p == nil {
		return false
	}
	cur := *p
	for i := range cur {
		if cur[i].id == id {
			next := make([]subscriber, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			e.sub.subs.Store(&next)
			return true
		}
	}
	return false
}

// Subscribers returns the number of registered delta subscribers.
func (e *Engine) Subscribers() int {
	if p := e.sub.subs.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// deltaBuf borrows a zeroed per-class buffer from the pool.
//
//tubelint:pooled
func (e *Engine) deltaBuf() *[]float64 {
	if v := e.sub.pool.Get(); v != nil {
		buf := v.(*[]float64)
		clear(*buf)
		return buf
	}
	buf := make([]float64, len(e.classes))
	return &buf
}

// notifyReport publishes a single accepted report to the subscribers.
func (e *Engine) notifyReport(classIdx int, volumeMB float64) {
	p := e.sub.subs.Load()
	if p == nil || len(*p) == 0 {
		return
	}
	buf := e.deltaBuf()
	(*buf)[classIdx] = volumeMB
	for i := range *p {
		(*p)[i].fn(*buf)
	}
	e.sub.pool.Put(buf)
	if m := e.metrics(); m != nil {
		m.deltas.Inc()
	}
}

// notifyWire sums an accepted wire frame per class and publishes one
// delta. The accumulation visits records in stream order, so the delta
// is bit-identical to notifyBatch fed the decoded equivalent.
func (e *Engine) notifyWire(recs []WireRecord) {
	p := e.sub.subs.Load()
	if p == nil || len(*p) == 0 {
		return
	}
	buf := e.deltaBuf()
	for i := range recs {
		(*buf)[recs[i].Class] += recs[i].VolumeMB
	}
	for i := range *p {
		(*p)[i].fn(*buf)
	}
	e.sub.pool.Put(buf)
	if m := e.metrics(); m != nil {
		m.deltas.Inc()
	}
}

// notifyBatch sums an accepted batch per class and publishes one delta.
func (e *Engine) notifyBatch(reports []Report, idxs []int32) {
	p := e.sub.subs.Load()
	if p == nil || len(*p) == 0 {
		return
	}
	buf := e.deltaBuf()
	for i := range reports {
		(*buf)[idxs[i]] += reports[i].VolumeMB
	}
	for i := range *p {
		(*p)[i].fn(*buf)
	}
	e.sub.pool.Put(buf)
	if m := e.metrics(); m != nil {
		m.deltas.Inc()
	}
}
