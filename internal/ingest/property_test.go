package ingest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// serialRef is the straightforward single-map accounting the original
// tube.Measurement implemented, with totals accumulated in sorted-user
// order — the determinism contract the sharded engine promises to match
// bit for bit.
type serialRef struct {
	classes []string
	byUser  map[string][]float64
}

func newSerialRef(classes []string) *serialRef {
	return &serialRef{classes: classes, byUser: make(map[string][]float64)}
}

func (r *serialRef) record(user, class string, v float64) {
	u := r.byUser[user]
	if u == nil {
		u = make([]float64, len(r.classes))
		r.byUser[user] = u
	}
	for j, c := range r.classes {
		if c == class {
			u[j] += v
			return
		}
	}
	panic("unknown class " + class)
}

func (r *serialRef) sortedUsers() []string {
	names := make([]string, 0, len(r.byUser))
	for u := range r.byUser {
		names = append(names, u)
	}
	sort.Strings(names)
	return names
}

func (r *serialRef) classTotals() []float64 {
	out := make([]float64, len(r.classes))
	for _, u := range r.sortedUsers() {
		for j, v := range r.byUser[u] {
			out[j] += v
		}
	}
	return out
}

func (r *serialRef) userTotals() map[string]float64 {
	out := make(map[string]float64, len(r.byUser))
	for u, vec := range r.byUser {
		var s float64
		for _, v := range vec {
			s += v
		}
		out[u] = s
	}
	return out
}

func (r *serialRef) rollover() ([]float64, map[string]float64) {
	ct, ut := r.classTotals(), r.userTotals()
	r.byUser = make(map[string][]float64)
	return ct, ut
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestShardedMatchesSerialProperty drives random report streams
// (irrational volumes, mixed Record/RecordBatch, interleaved rollovers)
// through the sharded engine at 1, 4, and 16 shards and asserts
// ClassTotals, UserTotals, and Rollover results are bit-identical to
// the serial reference.
func TestShardedMatchesSerialProperty(t *testing.T) {
	classes := classes3()
	for _, shards := range []int{1, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*shards + trial)))
			eng, err := NewEngine(classes, shards)
			if err != nil {
				t.Fatal(err)
			}
			ref := newSerialRef(classes)

			nOps := 50 + rng.Intn(400)
			for op := 0; op < nOps; op++ {
				switch {
				case rng.Float64() < 0.03:
					gotCT, gotUT := eng.Rollover()
					wantCT, wantUT := ref.rollover()
					checkTotals(t, shards, trial, "Rollover", gotCT, gotUT, wantCT, wantUT)
				case rng.Float64() < 0.3:
					n := 1 + rng.Intn(32)
					batch := make([]Report, n)
					for i := range batch {
						batch[i] = randReport(rng)
					}
					if err := eng.RecordBatch(batch); err != nil {
						t.Fatal(err)
					}
					for _, r := range batch {
						ref.record(r.User, r.Class, r.VolumeMB)
					}
				default:
					r := randReport(rng)
					if err := eng.Record(r.User, r.Class, r.VolumeMB); err != nil {
						t.Fatal(err)
					}
					ref.record(r.User, r.Class, r.VolumeMB)
				}
			}
			checkTotals(t, shards, trial, "final",
				eng.ClassTotals(), eng.UserTotals(), ref.classTotals(), ref.userTotals())
			if got, want := eng.Users(), ref.sortedUsers(); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shards=%d trial=%d: Users = %v, want %v", shards, trial, got, want)
			}
		}
	}
}

func randReport(rng *rand.Rand) Report {
	return Report{
		User:     fmt.Sprintf("user%03d", rng.Intn(48)),
		Class:    classes3()[rng.Intn(3)],
		VolumeMB: rng.ExpFloat64() * 7.3, // irrational-ish: exercises float ordering
	}
}

func checkTotals(t *testing.T, shards, trial int, where string,
	gotCT []float64, gotUT map[string]float64, wantCT []float64, wantUT map[string]float64) {
	t.Helper()
	if !bitsEqual(gotCT, wantCT) {
		t.Fatalf("shards=%d trial=%d %s: ClassTotals %v != serial %v (bitwise)",
			shards, trial, where, gotCT, wantCT)
	}
	if len(gotUT) != len(wantUT) {
		t.Fatalf("shards=%d trial=%d %s: %d users, want %d", shards, trial, where, len(gotUT), len(wantUT))
	}
	for u, v := range wantUT {
		if math.Float64bits(gotUT[u]) != math.Float64bits(v) {
			t.Fatalf("shards=%d trial=%d %s: UserTotals[%s] = %v, want %v (bitwise)",
				shards, trial, where, u, gotUT[u], v)
		}
	}
}
