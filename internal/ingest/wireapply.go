// Zero-copy wire apply: the decode-direct-to-shard half of the cluster
// ingest fast path.
//
// The classic path materializes a []Report from each wire frame and
// feeds it to RecordBatch, which re-does per-record work the frame
// already paid for once: every record hashes its user string, resolves
// its class through a string-keyed map, and copies two string headers —
// even though a v1 frame already carries a deduplicated user table and
// integer class indexes. ApplyWire instead takes the frame's own terms
// (user-table indexes, class indexes, volumes) and folds volumes into
// the shard counters directly:
//
//   - class validation is a bounds check, not a map lookup;
//   - the user hash is computed (or, via the hashes argument, reused
//     from the decoder's intern table) once per DISTINCT user in the
//     frame, not once per record;
//   - records are grouped per user and users per shard with intrusive
//     index chains in a pooled workspace, so each touched shard is
//     locked exactly once per frame and the whole apply is
//     zero-allocation at steady state.
//
// The fold preserves the per-(user, class) accumulation order of the
// record stream, so the resulting counters are bit-identical to
// RecordBatchAdmitted fed the decoded equivalent — pinned by the
// property tests in internal/wire.
package ingest

import (
	"fmt"
	"math"
	"sync"
)

// WireRecord is one usage record in frame-index form: User indexes a
// frame's user table, Class the engine's class list (the wire class
// table is built from Engine.Classes, so the indexes agree).
type WireRecord struct {
	User     int32
	Class    int32
	VolumeMB float64
}

// wireWS is the pooled per-frame grouping workspace. headUser is sized
// to the shard count and kept all -1 between borrows (ApplyWire resets
// only the entries it touched); everything else is re-initialized per
// call.
type wireWS struct {
	headRec  []int32 // per user: first record index, -1 = none
	nextRec  []int32 // per record: next record of the same user
	nextUser []int32 // per user: next user on the same shard
	headUser []int32 // per shard: first user index, -1 = none (invariant between uses)
	touched  []int32 // shards with at least one user this frame
}

// wireWSPool pools workspaces per engine (field on Engine would widen
// the struct for non-cluster users; a package pool keyed by shard count
// would leak across engines — per-engine pool via lazy holder).
type wireWSHolder struct {
	pool sync.Pool
}

// wireWS borrows a workspace sized for this engine's shard count.
//
//tubelint:pooled
func (e *Engine) wireWS() *wireWS {
	if v := e.wirePool.pool.Get(); v != nil {
		return v.(*wireWS)
	}
	ws := &wireWS{headUser: make([]int32, len(e.shards))}
	for i := range ws.headUser {
		ws.headUser[i] = -1
	}
	return ws
}

// growI32 returns s resized to n entries, reallocating only on growth.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// ApplyWire folds one decoded wire frame straight into the shard
// counters without materializing a []Report: users is the frame's
// (interned) user table, recs its records in frame-index form. Like
// RecordBatchAdmitted, the ownership filter is bypassed — callers have
// already admitted the frame — and validation is all-or-nothing: on any
// invalid record NOTHING is applied.
//
// hashes, when non-nil, must be the UserHash of each table entry
// (hashes[i] == UserHash(users[i])); the wire decoder caches these in
// its intern table, so a warm frame applies without hashing a single
// user string. Passing a wrong hash would land a user on the wrong
// shard and corrupt the merge order — only pass values obtained from
// UserHash. nil recomputes them.
func (e *Engine) ApplyWire(users []string, hashes []uint32, recs []WireRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if hashes != nil && len(hashes) != len(users) {
		return fmt.Errorf("user table %d entries, %d hashes: %w", len(users), len(hashes), ErrBadReport)
	}
	nU, nC := len(users), len(e.classes)
	reject := func(err error) error {
		if m := e.metrics(); m != nil {
			m.rejected.Add(int64(len(recs)))
		}
		return err
	}
	// All-or-nothing validation before any shard is touched: a retried
	// frame cannot double-count its valid prefix.
	for i := range recs {
		r := &recs[i]
		if r.User < 0 || int(r.User) >= nU {
			return reject(fmt.Errorf("record %d user index %d of %d: %w", i, r.User, nU, ErrBadReport))
		}
		if users[r.User] == "" {
			return reject(fmt.Errorf("record %d empty user: %w", i, ErrBadReport))
		}
		if r.Class < 0 || int(r.Class) >= nC {
			return reject(fmt.Errorf("record %d class index %d of %d: %w", i, r.Class, nC, ErrBadReport))
		}
		if r.VolumeMB < 0 || math.IsNaN(r.VolumeMB) {
			return reject(fmt.Errorf("record %d bad volume %v: %w", i, r.VolumeMB, ErrBadReport))
		}
	}

	ws := e.wireWS()
	// Per-user record chains, built in reverse so iteration yields each
	// user's records in stream order (bit-identical accumulation).
	headRec := growI32(ws.headRec, nU)
	for u := range headRec {
		headRec[u] = -1
	}
	nextRec := growI32(ws.nextRec, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		u := recs[i].User
		nextRec[i] = headRec[u]
		headRec[u] = int32(i)
	}
	// Per-shard user chains: one hash per distinct user (or none at all
	// when the decoder's cached hashes are passed in).
	nextUser := growI32(ws.nextUser, nU)
	headUser := ws.headUser
	touched := ws.touched[:0]
	for u := nU - 1; u >= 0; u-- {
		if headRec[u] < 0 {
			continue // table entry with no records this frame
		}
		var si int
		if hashes != nil {
			si = int(hashes[u] & e.mask)
		} else {
			si = e.shardIdxFor(users[u])
		}
		if headUser[si] < 0 {
			touched = append(touched, int32(si))
		}
		nextUser[u] = headUser[si]
		headUser[si] = int32(u)
	}
	// Apply: each touched shard is locked exactly once per frame.
	for _, si := range touched {
		s := &e.shards[si]
		s.mu.Lock()
		s.b++
		for u := headUser[si]; u >= 0; u = nextUser[u] {
			vec := s.byUser[users[u]]
			if vec == nil {
				vec = make([]float64, nC)
				s.byUser[users[u]] = vec
			}
			for i := headRec[u]; i >= 0; i = nextRec[i] {
				vec[recs[i].Class] += recs[i].VolumeMB
				s.n++
			}
		}
		s.mu.Unlock()
		headUser[si] = -1 // restore the workspace invariant
	}
	ws.headRec, ws.nextRec, ws.nextUser, ws.touched = headRec, nextRec, nextUser, touched[:0]
	e.wirePool.pool.Put(ws)
	if m := e.metrics(); m != nil {
		m.records.Add(int64(len(recs)))
		m.batches.Inc()
	}
	e.notifyWire(recs)
	return nil
}
