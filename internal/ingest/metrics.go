package ingest

import (
	"strconv"

	"tdp/internal/obs"
)

// engineMetrics is the optional obs hookup. It hangs off the engine
// behind an atomic pointer so an uninstrumented engine pays one
// predictable nil check per record — no registry lookups, no map
// access — on the hot path.
type engineMetrics struct {
	records  *obs.Counter // reports accepted (single + batch)
	batches  *obs.Counter // batches accepted
	rejected *obs.Counter // reports rejected by validation
	deltas   *obs.Counter // delta notifications delivered to subscribers
}

// Instrument registers the engine's counters and per-shard gauges on
// reg and starts recording. Safe to call at most once per engine;
// calling it on a second engine sharing the same registry re-binds the
// per-shard gauge callbacks to the newest engine (obs.GaugeFunc
// semantics), while counters accumulate across both.
func (e *Engine) Instrument(reg *obs.Registry) {
	m := &engineMetrics{
		records:  reg.Counter("ingest_reports_total", "usage reports accepted", nil),
		batches:  reg.Counter("ingest_batches_total", "usage batches accepted", nil),
		rejected: reg.Counter("ingest_reports_rejected_total", "usage reports rejected by validation", nil),
		deltas:   reg.Counter("ingest_deltas_total", "per-class delta notifications delivered to subscribers", nil),
	}
	e.met.Store(m)
	for i := range e.shards {
		s := &e.shards[i]
		lbl := obs.Labels{"shard": strconv.Itoa(i)}
		reg.GaugeFunc("ingest_shard_reports", "reports accepted this period, per shard", lbl,
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.n)
			})
		reg.GaugeFunc("ingest_shard_batches", "batch lock acquisitions this period, per shard", lbl,
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.b)
			})
		reg.GaugeFunc("ingest_shard_users", "distinct users this period, per shard", lbl,
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.byUser))
			})
	}
}

// metrics returns the hookup, or nil when uninstrumented.
func (e *Engine) metrics() *engineMetrics { return e.met.Load() }
