// Package ingest is the high-throughput usage accounting engine behind
// the TUBE measurement path. The paper's prototype metered per-user
// traffic with IPtables counters and a handful of testbed users (§VI);
// scaling the same accounting to "heavy traffic from millions of users"
// (ROADMAP north star) makes the ingestion path — not the optimizer —
// the throughput bottleneck, so this package trades the single global
// mutex of the original measurement engine for a sharded, lock-striped
// design:
//
//   - N shards (power of two), each owning a per-user → per-class-index
//     counter map guarded by its own mutex. A report's shard is the
//     FNV-1a hash of its user, so one user's counters always live on one
//     shard and per-user accumulation order is preserved.
//   - Batched ingestion: RecordBatch validates a whole []Report up
//     front (all-or-nothing) and then applies it with ONE lock
//     acquisition per touched shard, amortizing synchronization across
//     the batch.
//   - Merge-on-read totals: ClassTotals/UserTotals walk the shards only
//     when asked (period close, monitoring), keeping the write path
//     free of aggregation work.
//   - Atomic period rollover: Rollover swaps every shard's map inside a
//     single all-shards critical section, so each report lands entirely
//     in the closed period or entirely in the new one — never split,
//     never dropped.
//
// Determinism contract: totals are accumulated in sorted-user order
// (and, per user, in class-index order), so for the same serially
// issued report stream the results are bit-identical for every shard
// count. The property tests assert this at 1, 4, and 16 shards.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrBadReport is returned for invalid reports or configurations.
var ErrBadReport = errors.New("ingest: bad report")

// ErrNotOwned is returned when an ownership filter (SetFilter) rejects a
// report's user: the report is valid but belongs to another node of the
// cluster. The serving layer maps it to a redirect, not a client error.
var ErrNotOwned = errors.New("ingest: user not owned by this node")

// Report is one usage accounting record: volumeMB of class traffic
// attributed to user. It is also the wire format of the TUBE server's
// /usage and /usage/batch endpoints.
type Report struct {
	User     string  `json:"user"`
	Class    string  `json:"class"`
	VolumeMB float64 `json:"volumeMB"`
}

// shard is one lock stripe. The padding keeps adjacent shard mutexes on
// separate cache lines so uncontended shards do not false-share.
type shard struct {
	mu     sync.Mutex
	byUser map[string][]float64 // guarded by mu: user → per-class-index MB
	n      int64                // guarded by mu: reports accepted
	b      int64                // guarded by mu: batch lock acquisitions (grouped path)
	_      [88]byte
}

// Engine is the sharded accounting engine for one accounting period.
type Engine struct {
	classes  []string
	classIdx map[string]int // precomputed set: O(1) class check on the hot path
	shards   []shard
	mask     uint32
	met      atomic.Pointer[engineMetrics] // nil until Instrument
	sub      subscriptions                 // delta subscribers (see subscribe.go)
	filter   atomic.Pointer[FilterFunc]    // nil until SetFilter: cluster ownership hook
	wirePool wireWSHolder                  // ApplyWire grouping workspaces (see wireapply.go)
}

// FilterFunc is an ownership predicate over user keys: true means this
// engine's node owns the user and the report may be accounted here.
type FilterFunc func(user string) bool

// SetFilter installs (or, with nil, removes) an ownership filter applied
// to externally submitted reports: Record and RecordBatch reject reports
// whose user the filter disowns with an error wrapping ErrNotOwned.
// RecordBatchAdmitted bypasses the filter for batches whose ownership
// the cluster layer already checked at admission — once a node has
// acknowledged a batch it must account it even if the ring has since
// moved the users, or a rebalance would silently lose acknowledged
// reports.
func (e *Engine) SetFilter(f FilterFunc) {
	if f == nil {
		e.filter.Store(nil)
		return
	}
	e.filter.Store(&f)
}

// DefaultShards is the shard count used when NewEngine is given 0: the
// next power of two ≥ 8×GOMAXPROCS, capped to [1, 256]. Oversharding
// relative to the core count keeps the collision probability of two
// running goroutines on one stripe low.
func DefaultShards() int {
	n := nextPow2(8 * runtime.GOMAXPROCS(0))
	if n > 256 {
		n = 256
	}
	return n
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewEngine creates an engine accounting the given traffic classes over
// `shards` lock stripes (0 → DefaultShards; other values are rounded up
// to a power of two and capped at 1024).
func NewEngine(classes []string, shards int) (*Engine, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("no classes: %w", ErrBadReport)
	}
	classIdx := make(map[string]int, len(classes))
	for i, c := range classes {
		if c == "" {
			return nil, fmt.Errorf("class %d empty: %w", i, ErrBadReport)
		}
		if _, dup := classIdx[c]; dup {
			return nil, fmt.Errorf("class %q duplicate: %w", c, ErrBadReport)
		}
		classIdx[c] = i
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = nextPow2(shards)
	if shards > 1024 {
		shards = 1024
	}
	e := &Engine{
		classes:  append([]string(nil), classes...),
		classIdx: classIdx,
		shards:   make([]shard, shards),
		mask:     uint32(shards - 1),
	}
	for i := range e.shards {
		e.shards[i].byUser = make(map[string][]float64)
	}
	return e, nil
}

// Classes returns the accounted traffic classes in index order.
func (e *Engine) Classes() []string { return append([]string(nil), e.classes...) }

// NumShards returns the number of lock stripes.
func (e *Engine) NumShards() int { return len(e.shards) }

// UserHash is the FNV-1a hash placing a user key, shared by the
// in-process shard mapping below and the cluster ring's consistent-hash
// placement (internal/cluster), so one user's reports land on one shard
// of one node under every topology.
func UserHash(user string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= 16777619
	}
	return h
}

// shardIdxFor maps a user to its stripe via FNV-1a (inlined to keep the
// hot path allocation-free).
func (e *Engine) shardIdxFor(user string) int {
	return int(UserHash(user) & e.mask)
}

// validate checks one report and resolves its class index.
func (e *Engine) validate(r *Report) (int, error) {
	return e.validateIn(r, true)
}

// validateIn checks one report, optionally enforcing the ownership
// filter (admission-checked cluster batches skip it).
func (e *Engine) validateIn(r *Report, enforceOwner bool) (int, error) {
	if r.User == "" {
		return 0, fmt.Errorf("empty user: %w", ErrBadReport)
	}
	idx, ok := e.classIdx[r.Class]
	if !ok {
		return 0, fmt.Errorf("unknown class %q: %w", r.Class, ErrBadReport)
	}
	if r.VolumeMB < 0 || math.IsNaN(r.VolumeMB) {
		return 0, fmt.Errorf("bad volume %v: %w", r.VolumeMB, ErrBadReport)
	}
	if enforceOwner {
		if f := e.filter.Load(); f != nil && !(*f)(r.User) {
			return 0, fmt.Errorf("user %q: %w", r.User, ErrNotOwned)
		}
	}
	return idx, nil
}

// Record accounts volumeMB of class traffic for user.
func (e *Engine) Record(user, class string, volumeMB float64) error {
	r := Report{User: user, Class: class, VolumeMB: volumeMB}
	idx, err := e.validate(&r)
	if err != nil {
		if m := e.metrics(); m != nil {
			m.rejected.Inc()
		}
		return err
	}
	s := &e.shards[e.shardIdxFor(user)]
	s.mu.Lock()
	s.apply(user, idx, volumeMB, len(e.classes))
	s.mu.Unlock()
	if m := e.metrics(); m != nil {
		m.records.Inc()
	}
	e.notifyReport(idx, volumeMB)
	return nil
}

// apply accumulates under s.mu.
func (s *shard) apply(user string, classIdx int, volumeMB float64, nClasses int) {
	u := s.byUser[user]
	if u == nil {
		u = make([]float64, nClasses)
		s.byUser[user] = u
	}
	u[classIdx] += volumeMB
	s.n++
}

// RecordBatch accounts a whole batch with one lock acquisition per
// touched shard. Validation is all-or-nothing: if any report is invalid
// the batch is rejected and NOTHING is applied, so a client retrying a
// failed batch cannot double-count its valid prefix.
func (e *Engine) RecordBatch(reports []Report) error {
	return e.recordBatch(reports, true)
}

// RecordBatchAdmitted accounts a batch whose ownership was already
// checked by the cluster admission layer: the ownership filter is
// bypassed (see SetFilter), all other validation is identical to
// RecordBatch. Use only for reports this node has acknowledged.
func (e *Engine) RecordBatchAdmitted(reports []Report) error {
	return e.recordBatch(reports, false)
}

func (e *Engine) recordBatch(reports []Report, enforceOwner bool) error {
	if len(reports) == 0 {
		return nil
	}
	idxs := make([]int32, len(reports))
	for i := range reports {
		idx, err := e.validateIn(&reports[i], enforceOwner)
		if err != nil {
			// All-or-nothing: the whole batch is rejected, so the whole
			// batch counts as rejected.
			if m := e.metrics(); m != nil {
				m.rejected.Add(int64(len(reports)))
			}
			return fmt.Errorf("report %d: %w", i, err)
		}
		idxs[i] = int32(idx)
	}
	nClasses := len(e.classes)
	// Batches smaller than the stripe count rarely land two reports on
	// one shard, so grouping cannot amortize anything: per-report
	// locking beats building the per-shard buckets (which are sized by
	// the shard count).
	if len(reports) < len(e.shards) {
		for i := range reports {
			r := &reports[i]
			s := &e.shards[e.shardIdxFor(r.User)]
			s.mu.Lock()
			s.apply(r.User, int(idxs[i]), r.VolumeMB, nClasses)
			s.mu.Unlock()
		}
		if m := e.metrics(); m != nil {
			m.records.Add(int64(len(reports)))
			m.batches.Inc()
		}
		e.notifyBatch(reports, idxs)
		return nil
	}
	// Group report indices by shard, preserving submission order within
	// each shard (a user's reports keep their relative order because one
	// user always hashes to one shard).
	perShard := make([][]int32, len(e.shards))
	touched := make([]int, 0, 8)
	for i := range reports {
		si := e.shardIdxFor(reports[i].User)
		if perShard[si] == nil {
			touched = append(touched, si)
		}
		perShard[si] = append(perShard[si], int32(i))
	}
	for _, si := range touched {
		s := &e.shards[si]
		s.mu.Lock()
		s.b++
		for _, i := range perShard[si] {
			r := &reports[i]
			s.apply(r.User, int(idxs[i]), r.VolumeMB, nClasses)
		}
		s.mu.Unlock()
	}
	if m := e.metrics(); m != nil {
		m.records.Add(int64(len(reports)))
		m.batches.Inc()
	}
	e.notifyBatch(reports, idxs)
	return nil
}

// lockAll acquires every stripe in index order (the one global ordering,
// so totals/rollover cannot deadlock against each other).
func (e *Engine) lockAll() {
	for i := range e.shards {
		e.shards[i].mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for i := range e.shards {
		e.shards[i].mu.Unlock()
	}
}

// ClassTotals returns the period-so-far aggregate volume per class,
// ordered as Classes(). The merge walks users in sorted order so the
// float accumulation order — and hence the result, bit for bit — is
// independent of the shard count.
func (e *Engine) ClassTotals() []float64 {
	e.lockAll()
	defer e.unlockAll()
	return e.mergeClassTotals(e.sortedUsersLocked())
}

func (e *Engine) sortedUsersLocked() []string {
	var n int
	for i := range e.shards {
		n += len(e.shards[i].byUser)
	}
	names := make([]string, 0, n)
	for i := range e.shards {
		for u := range e.shards[i].byUser {
			names = append(names, u)
		}
	}
	sort.Strings(names)
	return names
}

// mergeClassTotals must run with the shards locked (or on an owned
// snapshot after Rollover's swap).
func (e *Engine) mergeClassTotals(sortedUsers []string) []float64 {
	out := make([]float64, len(e.classes))
	for _, u := range sortedUsers {
		vec := e.shards[e.shardIdxFor(u)].byUser[u]
		for j, v := range vec {
			out[j] += v
		}
	}
	return out
}

// UserTotals returns the period-so-far total volume per user.
func (e *Engine) UserTotals() map[string]float64 {
	e.lockAll()
	defer e.unlockAll()
	out := make(map[string]float64)
	for i := range e.shards {
		for u, vec := range e.shards[i].byUser {
			var s float64
			for _, v := range vec {
				s += v
			}
			out[u] = s
		}
	}
	return out
}

// Users returns the users seen this period, sorted.
func (e *Engine) Users() []string {
	e.lockAll()
	defer e.unlockAll()
	return e.sortedUsersLocked()
}

// Accepted returns the number of reports accounted since the last
// rollover.
func (e *Engine) Accepted() int64 {
	e.lockAll()
	defer e.unlockAll()
	var n int64
	for i := range e.shards {
		n += e.shards[i].n
	}
	return n
}

// Rollover atomically closes the period: every shard's map is swapped
// for a fresh one inside a single all-shards critical section, so a
// concurrent Record/RecordBatch lands entirely in the closed period or
// entirely in the new one. It returns the closed period's per-class
// totals (ordered as Classes()) and per-user totals, computed from the
// owned snapshot outside the critical section.
func (e *Engine) Rollover() (classTotals []float64, userTotals map[string]float64) {
	old := make([]map[string][]float64, len(e.shards))
	e.lockAll()
	for i := range e.shards {
		old[i] = e.shards[i].byUser
		e.shards[i].byUser = make(map[string][]float64, len(old[i]))
		e.shards[i].n = 0
		e.shards[i].b = 0
	}
	e.unlockAll()

	var n int
	for _, m := range old {
		n += len(m)
	}
	names := make([]string, 0, n)
	userTotals = make(map[string]float64, n)
	for _, m := range old {
		for u, vec := range m {
			names = append(names, u)
			var s float64
			for _, v := range vec {
				s += v
			}
			userTotals[u] = s
		}
	}
	sort.Strings(names)
	classTotals = make([]float64, len(e.classes))
	for _, u := range names {
		vec := old[e.shardIdxFor(u)][u]
		for j, v := range vec {
			classTotals[j] += v
		}
	}
	return classTotals, userTotals
}

// Reset closes the period and returns only its per-class totals,
// mirroring the original serial measurement API.
func (e *Engine) Reset() []float64 {
	ct, _ := e.Rollover()
	return ct
}
