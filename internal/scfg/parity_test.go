package scfg_test

import (
	"reflect"
	"testing"

	"tdp/internal/core"
	"tdp/internal/experiments"
	"tdp/internal/scfg"
)

// TestCheckedInConfigParity pins every ported config under
// examples/scenarios/ to its Go constructor, field for field: Compile()
// must be *bit-identical* — reflect.DeepEqual over the whole Scenario,
// no tolerance — so a drifted JSON file (or a drifted constructor) is a
// test failure, not a silently different experiment. The files are
// regenerated with `go run ./tools/genscenarios` when a constructor
// legitimately changes.
func TestCheckedInConfigParity(t *testing.T) {
	seeds := []struct {
		file string
		want *core.Scenario
	}{
		{"static12.json", experiments.Static12()},
		{"static48.json", experiments.Static48()},
		{"dynamic48.json", experiments.Dynamic48()},
		{"static12-waitperturb-p1.json", experiments.Static12WaitPerturbPeriod1()},
		{"static12-waitperturb-all.json", experiments.Static12WaitPerturbAll()},
	}
	for _, s := range seeds {
		t.Run(s.file, func(t *testing.T) {
			cfg, err := scfg.ParseFile("../../examples/scenarios/" + s.file)
			if err != nil {
				t.Fatalf("ParseFile: %v", err)
			}
			got, err := cfg.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if !reflect.DeepEqual(got, s.want) {
				t.Fatalf("compiled scenario differs from constructor:\n got: %+v\nwant: %+v", got, s.want)
			}
		})
	}
}

// TestCheckedInConfigsAllValid sweeps every checked-in example —
// including the generator-form one with no Go twin — through
// parse + validate + compile, the same path `tubesim -check` runs.
func TestCheckedInConfigsAllValid(t *testing.T) {
	files := []string{
		"static12.json", "static48.json", "dynamic48.json",
		"static12-waitperturb-p1.json", "static12-waitperturb-all.json",
		"evening-peak.json",
	}
	for _, f := range files {
		t.Run(f, func(t *testing.T) {
			cfg, err := scfg.ParseFile("../../examples/scenarios/" + f)
			if err != nil {
				t.Fatalf("ParseFile: %v", err)
			}
			scn, err := cfg.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := scn.Validate(); err != nil {
				t.Fatalf("compiled scenario invalid: %v", err)
			}
			if _, err := cfg.Pricer(); err != nil {
				t.Fatalf("Pricer: %v", err)
			}
		})
	}
}
