package scfg_test

import (
	"errors"
	"strings"
	"testing"

	"tdp/internal/scfg"
)

// FuzzParse asserts the decoder's contract on arbitrary input: it never
// panics, every rejection wraps ErrBadConfig, and anything it accepts
// compiles into a scenario that passes core validation (Parse accepting
// a config Compile then rejects would mean the two validators disagree).
func FuzzParse(f *testing.F) {
	f.Add(`{"name":"x","scenario":{"periods":3,"betas":[1],"demand":{"rows":[[1],[1],[1]]},"capacity":{"constant":5},"cost":{"slope":3}}}`)
	f.Add(`{"name":"g","scenario":{"periods":2,"betas":[1,2],"demand":{"generator":{"base":[3,1],"windows":[{"periods":[2],"multiplier":2}]}},"capacity":{"profile":[4,4]},"cost":{"breaks":[0,2],"slopes":[1,5]}}}`)
	f.Add(`{"name":"m","scenario":{"periods":2,"betas":[1],"demand":{"rows":[[1],[1]]},"capacity":{"constant":5},"cost":{"slope":3}},"mechanism":{"name":"rebate","budget":4}}`)
	f.Add(`{}`)
	f.Add(`[1, 2`)
	f.Add(`{"name":"x","scenario":{"periods":1e9}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		cfg, err := scfg.Parse(strings.NewReader(doc))
		if err != nil {
			if !errors.Is(err, scfg.ErrBadConfig) {
				t.Fatalf("rejection does not wrap ErrBadConfig: %v", err)
			}
			return
		}
		scn, err := cfg.Compile()
		if err != nil {
			t.Fatalf("validated config failed to compile: %v\ndoc: %s", err, doc)
		}
		if err := scn.Validate(); err != nil {
			t.Fatalf("compiled scenario invalid: %v\ndoc: %s", err, doc)
		}
	})
}
