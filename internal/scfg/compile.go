package scfg

import (
	"fmt"

	"tdp/internal/core"
)

// Compile materializes the validated config into a *core.Scenario. For
// a config ported from a Go constructor (explicit demand rows, constant
// capacity, slope-form cost) the result is bit-identical to what the
// constructor builds: JSON decimal literals round-trip to the same
// float64s as Go source literals, and Compile performs no arithmetic on
// rows-form values — only copies. Generator-form demand and windowed
// capacity are synthesized (base × multiplier per period).
func (c *Config) Compile() (*core.Scenario, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &c.Scenario
	scn := &core.Scenario{
		Periods:       s.Periods,
		Betas:         append([]float64(nil), s.Betas...),
		PeriodSeconds: s.PeriodSeconds,
		MaxRewardNorm: s.MaxRewardNorm,
		NoWrap:        s.NoWrap,
	}

	if rows := s.Demand.Rows; rows != nil {
		scn.Demand = make([][]float64, len(rows))
		for i, row := range rows {
			scn.Demand[i] = append([]float64(nil), row...)
		}
	} else {
		g := s.Demand.Generator
		mult := windowMultipliers(g.Windows, s.Periods, deref(g.DefaultMultiplier, 1))
		scn.Demand = make([][]float64, s.Periods)
		for i := range scn.Demand {
			row := make([]float64, len(g.Base))
			for j, b := range g.Base {
				row[j] = b * mult[i]
			}
			scn.Demand[i] = row
		}
	}

	base := make([]float64, s.Periods)
	if s.Capacity.Constant != nil {
		for i := range base {
			base[i] = *s.Capacity.Constant
		}
	} else {
		copy(base, s.Capacity.Profile)
	}
	if len(s.Capacity.Windows) > 0 {
		mult := windowMultipliers(s.Capacity.Windows, s.Periods, 1)
		for i := range base {
			base[i] *= mult[i]
		}
	}
	scn.Capacity = base

	if s.Cost.Slope != 0 {
		scn.Cost = core.LinearCost(s.Cost.Slope)
	} else {
		scn.Cost = core.CostFunc{
			Breaks: append([]float64(nil), s.Cost.Breaks...),
			Slopes: append([]float64(nil), s.Cost.Slopes...),
		}
	}

	if err := scn.Validate(); err != nil {
		// Validate() vets every field Compile writes, so this is
		// unreachable unless the two validators drift apart.
		return nil, fmt.Errorf("compiled scenario: %v: %w", err, ErrBadConfig)
	}
	return scn, nil
}

// windowMultipliers expands a validated window list to a per-period
// multiplier vector (1-based window periods onto 0-based slots).
func windowMultipliers(ws []Window, periods int, def float64) []float64 {
	out := make([]float64, periods)
	for i := range out {
		out[i] = def
	}
	for _, w := range ws {
		for _, q := range w.Periods {
			out[q-1] = w.Multiplier
		}
	}
	return out
}

func deref(p *float64, def float64) float64 {
	if p == nil {
		return def
	}
	return *p
}
