package scfg_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"tdp/internal/core"
	"tdp/internal/mechanism"
	"tdp/internal/scfg"
)

// minimal returns a small valid config document the error-path tests
// mutate one field at a time.
func minimal() string {
	return `{
		"name": "mini",
		"scenario": {
			"periods": 3,
			"betas": [1, 2],
			"demand": {"rows": [[4, 3], [2, 1], [1, 1]]},
			"capacity": {"constant": 5},
			"cost": {"slope": 3}
		}
	}`
}

func parse(t *testing.T, doc string) (*scfg.Config, error) {
	t.Helper()
	return scfg.Parse(strings.NewReader(doc))
}

func mustParse(t *testing.T, doc string) *scfg.Config {
	t.Helper()
	c, err := parse(t, doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestParseMinimal(t *testing.T) {
	c := mustParse(t, minimal())
	scn, err := c.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if scn.Periods != 3 || len(scn.Demand) != 3 || len(scn.Betas) != 2 {
		t.Fatalf("compiled shape: %+v", scn)
	}
	if got := scn.Capacity; got[0] != 5 || got[1] != 5 || got[2] != 5 {
		t.Fatalf("capacity = %v, want constant 5", got)
	}
	if scn.Cost.MaxSlope() != 3 {
		t.Fatalf("cost max slope = %v, want 3", scn.Cost.MaxSlope())
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown top key":    `{"name": "x", "bogus": 1, "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"unknown nested key": `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]], "typo": true}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"trailing garbage":   minimal() + `{"second": "doc"}`,
		"not json":           `periods: 12`,
		"missing name":       `{"scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"one period":         `{"name": "x", "scenario": {"periods": 1, "betas": [1], "demand": {"rows": [[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"no betas":           `{"name": "x", "scenario": {"periods": 3, "betas": [], "demand": {"rows": [[],[],[]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"negative beta":      `{"name": "x", "scenario": {"periods": 3, "betas": [-1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"class count":        `{"name": "x", "scenario": {"periods": 3, "classes": ["a", "b"], "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"duplicate class":    `{"name": "x", "scenario": {"periods": 3, "classes": ["a", "a"], "betas": [1, 2], "demand": {"rows": [[1,1],[1,1],[1,1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"row count":          `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"ragged demand":      `{"name": "x", "scenario": {"periods": 3, "betas": [1, 2], "demand": {"rows": [[1, 2], [1], [1, 2]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"negative demand":    `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[-2],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"demand both forms":  `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]], "generator": {"base": [1]}}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"demand no form":     `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"generator base":     `{"name": "x", "scenario": {"periods": 3, "betas": [1, 2], "demand": {"generator": {"base": [1]}}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"window period 0":    `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"generator": {"base": [1], "windows": [{"periods": [0], "multiplier": 2}]}}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"window overlap":     `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"generator": {"base": [1], "windows": [{"name": "a", "periods": [1, 2], "multiplier": 2}, {"name": "b", "periods": [2], "multiplier": 3}]}}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"window empty":       `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"generator": {"base": [1], "windows": [{"periods": [], "multiplier": 2}]}}, "capacity": {"constant": 5}, "cost": {"slope": 3}}}`,
		"negative capacity":  `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": -5}, "cost": {"slope": 3}}}`,
		"capacity profile":   `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"profile": [5, 5]}, "cost": {"slope": 3}}}`,
		"capacity both":      `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5, "profile": [5, 5, 5]}, "cost": {"slope": 3}}}`,
		"capacity neither":   `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {}, "cost": {"slope": 3}}}`,
		"cost neither":       `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {}}}`,
		"cost both":          `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3, "breaks": [0], "slopes": [3]}}}`,
		"cost negative":      `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": -3}}}`,
		"cost ragged pw":     `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"breaks": [0, 2], "slopes": [1]}}}`,
		"cost breaks order":  `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"breaks": [2, 0], "slopes": [1, 2]}}}`,
		"sim model":          `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}, "sim": {"model": "quantum"}}`,
		"sim negative days":  `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}, "sim": {"days": -1}}`,
		"bad mechanism":      `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}, "mechanism": {"name": "surge"}}`,
		"bad mech params":    `{"name": "x", "scenario": {"periods": 3, "betas": [1], "demand": {"rows": [[1],[1],[1]]}, "capacity": {"constant": 5}, "cost": {"slope": 3}}, "mechanism": {"name": "rebate", "budgetFraction": 2}}`,
	}
	for label, doc := range cases {
		t.Run(label, func(t *testing.T) {
			c, err := parse(t, doc)
			if err == nil {
				t.Fatalf("Parse accepted %s: %+v", label, c)
			}
			if !errors.Is(err, scfg.ErrBadConfig) {
				t.Fatalf("error does not wrap ErrBadConfig: %v", err)
			}
		})
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := scfg.ParseFile("testdata/definitely-absent.json"); !errors.Is(err, scfg.ErrBadConfig) {
		t.Fatalf("missing file error = %v, want ErrBadConfig wrap", err)
	}
}

func TestGeneratorDemand(t *testing.T) {
	c := mustParse(t, `{
		"name": "gen",
		"scenario": {
			"periods": 4,
			"betas": [1, 2],
			"demand": {"generator": {
				"base": [10, 6],
				"windows": [{"name": "peak", "periods": [2, 3], "multiplier": 1.5}],
				"defaultMultiplier": 0.5
			}},
			"capacity": {"profile": [20, 20, 10, 20], "windows": [{"name": "maint", "periods": [4], "multiplier": 0.5}]},
			"cost": {"breaks": [0, 5], "slopes": [1, 4]}
		}
	}`)
	scn, err := c.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	wantDemand := [][]float64{{5, 3}, {15, 9}, {15, 9}, {5, 3}}
	for i, row := range wantDemand {
		for j, v := range row {
			if scn.Demand[i][j] != v {
				t.Fatalf("demand[%d][%d] = %v, want %v (full: %v)", i, j, scn.Demand[i][j], v, scn.Demand)
			}
		}
	}
	wantCap := []float64{20, 20, 10, 10}
	for i, v := range wantCap {
		if scn.Capacity[i] != v {
			t.Fatalf("capacity = %v, want %v", scn.Capacity, wantCap)
		}
	}
	// Piecewise slopes are incremental: beyond the last break f' = 1+4.
	if got := scn.Cost.MaxSlope(); got != 5 {
		t.Fatalf("max slope = %v, want 5", got)
	}
}

func TestClassNames(t *testing.T) {
	c := mustParse(t, minimal())
	if got := c.ClassNames(); len(got) != 2 || got[0] != "class1" || got[1] != "class2" {
		t.Fatalf("synthesized names = %v", got)
	}
	named := mustParse(t, strings.Replace(minimal(), `"betas"`, `"classes": ["web", "bulk"], "betas"`, 1))
	if got := named.ClassNames(); got[0] != "web" || got[1] != "bulk" {
		t.Fatalf("declared names = %v", got)
	}
}

func TestPricerSelection(t *testing.T) {
	c := mustParse(t, minimal())
	if got := c.MechanismName(); got != "tdp" {
		t.Fatalf("default mechanism = %q, want tdp", got)
	}
	p, err := c.Pricer()
	if err != nil {
		t.Fatalf("Pricer: %v", err)
	}
	if p.Name() != "tdp" {
		t.Fatalf("default pricer = %q", p.Name())
	}
	for _, name := range mechanism.Names() {
		q, err := c.PricerNamed(name)
		if err != nil {
			t.Fatalf("PricerNamed(%q): %v", name, err)
		}
		if q.Name() != name {
			t.Fatalf("PricerNamed(%q).Name() = %q", name, q.Name())
		}
	}
	if _, err := c.PricerNamed("surge"); !errors.Is(err, scfg.ErrBadConfig) {
		t.Fatalf("unknown pricer error = %v, want ErrBadConfig wrap", err)
	} else if !errors.Is(err, mechanism.ErrBadMechanism) {
		t.Fatalf("unknown pricer error = %v, want ErrBadMechanism wrap too", err)
	}
}

func TestPricerCarriesParams(t *testing.T) {
	c := mustParse(t, `{
		"name": "tod",
		"scenario": {
			"periods": 3,
			"betas": [1],
			"demand": {"rows": [[4], [2], [1]]},
			"capacity": {"constant": 3},
			"cost": {"slope": 3}
		},
		"mechanism": {
			"name": "static-tod",
			"windows": [{"name": "night", "periods": [2, 3], "multiplier": 0.8}],
			"defaultMultiplier": 0
		}
	}`)
	p, err := c.Pricer()
	if err != nil {
		t.Fatalf("Pricer: %v", err)
	}
	scn, err := c.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rewards, err := p.PlanDay(scn, nil)
	if err != nil {
		t.Fatalf("PlanDay: %v", err)
	}
	if rewards[0] != 0 {
		t.Fatalf("default-multiplier period rewarded: %v", rewards)
	}
	want := 0.8 * scn.NormReward()
	if math.Abs(rewards[1]-want) > 1e-12 || math.Abs(rewards[2]-want) > 1e-12 {
		t.Fatalf("window rewards = %v, want %v", rewards[1:], want)
	}
}

func TestSimModelDynamicFlowsIntoTDP(t *testing.T) {
	doc := strings.TrimSuffix(strings.TrimSpace(minimal()), "}") +
		`, "sim": {"model": "dynamic"}}`
	c := mustParse(t, doc)
	p, err := c.Pricer()
	if err != nil {
		t.Fatalf("Pricer: %v", err)
	}
	if _, ok := p.(*mechanism.TDP); !ok {
		t.Fatalf("default pricer type %T, want *mechanism.TDP", p)
	}
	// The dynamic flag's effect (carry-over model) is covered by
	// mechanism tests; here it only matters that construction accepts
	// the combination.
	if _, err := p.PlanDay(mustCompile(t, c), nil); err != nil {
		t.Fatalf("dynamic PlanDay: %v", err)
	}
}

func mustCompile(t *testing.T, c *scfg.Config) *core.Scenario {
	t.Helper()
	s, err := c.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}
