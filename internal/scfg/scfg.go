// Package scfg is the declarative scenario/workload config format: a
// strict, stdlib-only JSON grammar covering everything core.Scenario
// expresses — periods, per-class demand (explicit rows or wanctl-style
// peak-window × multiplier generator shapes), patience indices,
// capacity profiles, piecewise-linear cost, normalization and wrap
// options — plus simulation knobs (days, users, demand model) and a
// pricing-mechanism selection, so tubesim/tubeload/tubeopt and the
// experiment runners can run arbitrary workloads without recompiling.
//
// Parsing is strict: unknown keys, ragged matrices, dimension
// mismatches, and out-of-domain values are all rejected with errors
// wrapping ErrBadConfig, so a typo'd config fails fast instead of
// silently running a different workload. Compile materializes the
// validated config into a *core.Scenario bit-identical to what the
// equivalent Go constructor would build.
package scfg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"tdp/internal/mechanism"
)

// ErrBadConfig is returned for configs that fail to parse or validate.
var ErrBadConfig = errors.New("scfg: invalid config")

// Config is the root of the scenario config grammar.
type Config struct {
	// Name identifies the workload (used in reports and file names).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Scenario declares the pricing problem instance.
	Scenario ScenarioConfig `json:"scenario"`
	// Sim carries optional simulation knobs for the driving tool.
	Sim *SimConfig `json:"sim,omitempty"`
	// Mechanism selects and parameterizes the pricing mechanism
	// (default: the paper's "tdp" optimizer).
	Mechanism *MechanismConfig `json:"mechanism,omitempty"`
}

// ScenarioConfig declares a core.Scenario.
type ScenarioConfig struct {
	// Periods is the number of periods n in the day.
	Periods int `json:"periods"`
	// Classes optionally names the session types (len == len(Betas));
	// tools that need class names synthesize "class1…" when absent.
	Classes []string `json:"classes,omitempty"`
	// Betas[j] is the patience index of session type j.
	Betas []float64 `json:"betas"`
	// Demand declares the per-period, per-type TIP demand.
	Demand DemandConfig `json:"demand"`
	// Capacity declares the per-period capacity profile.
	Capacity CapacityConfig `json:"capacity"`
	// Cost declares the capacity-exceedance cost f.
	Cost CostConfig `json:"cost"`
	// PeriodSeconds is the real-time period length (0 → the model's
	// half-hour default).
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
	// MaxRewardNorm overrides the waiting-function normalization reward
	// (0 → the cost function's maximum slope, the paper's default).
	MaxRewardNorm float64 `json:"maxRewardNorm,omitempty"`
	// NoWrap disables deferrals across the day boundary.
	NoWrap bool `json:"noWrap,omitempty"`
}

// DemandConfig declares demand either as explicit rows or as a
// generator shape; exactly one of the two must be set.
type DemandConfig struct {
	// Rows[i][j] is the TIP demand of type j in period i+1.
	Rows [][]float64 `json:"rows,omitempty"`
	// Generator synthesizes rows from a per-class base row and
	// time-of-day windows.
	Generator *DemandGenerator `json:"generator,omitempty"`
}

// DemandGenerator is the wanctl idiom for demand: a base per-class row
// scaled per period by window multipliers.
type DemandGenerator struct {
	// Base[j] is the per-period demand of type j before shaping.
	Base []float64 `json:"base"`
	// Windows assign multipliers to 1-based period sets; windows must
	// not overlap (the declared trace should have one reading).
	Windows []Window `json:"windows,omitempty"`
	// DefaultMultiplier applies outside every window (absent → 1).
	DefaultMultiplier *float64 `json:"defaultMultiplier,omitempty"`
}

// Window names a set of 1-based periods sharing one multiplier.
type Window struct {
	Name       string  `json:"name,omitempty"`
	Periods    []int   `json:"periods"`
	Multiplier float64 `json:"multiplier"`
}

// CapacityConfig declares capacity as a constant or an explicit
// profile (exactly one), optionally scaled by time-of-day windows.
type CapacityConfig struct {
	// Constant sets every period's capacity to one value.
	Constant *float64 `json:"constant,omitempty"`
	// Profile[i] is period i+1's capacity.
	Profile []float64 `json:"profile,omitempty"`
	// Windows scale the base capacity per period (e.g. a maintenance
	// window at multiplier 0.5); non-overlapping, default multiplier 1.
	Windows []Window `json:"windows,omitempty"`
}

// CostConfig declares the cost f either as a single linear slope
// (f(x) = slope·max(x, 0)) or as a full piecewise-linear form with
// *incremental* slopes, f(x) = Σ_k slopes[k]·max(x − breaks[k], 0);
// exactly one of the two readings must be used.
type CostConfig struct {
	Slope  float64   `json:"slope,omitempty"`
	Breaks []float64 `json:"breaks,omitempty"`
	Slopes []float64 `json:"slopes,omitempty"`
}

// SimConfig carries simulation knobs for the driving tool; every field
// is optional and tool defaults apply when 0.
type SimConfig struct {
	// Days is how many emulated days to run back-to-back.
	Days int `json:"days,omitempty"`
	// Users sizes the emulated population.
	Users int `json:"users,omitempty"`
	// Model selects the demand model: "static" (default) or "dynamic".
	Model string `json:"model,omitempty"`
	// Seed drives the simulation's randomness.
	Seed int64 `json:"seed,omitempty"`
}

// MechanismConfig selects a pricing mechanism by registry name and
// carries its parameters (each backend documents which it reads).
type MechanismConfig struct {
	Name string `json:"name"`
	// Budget and BudgetFraction parameterize "rebate".
	Budget         float64 `json:"budget,omitempty"`
	BudgetFraction float64 `json:"budgetFraction,omitempty"`
	// Gamma and Rounds parameterize "reverse".
	Gamma  float64 `json:"gamma,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	// Windows and DefaultMultiplier parameterize "static-tod".
	Windows           []Window `json:"windows,omitempty"`
	DefaultMultiplier float64  `json:"defaultMultiplier,omitempty"`
	// Dynamic makes "tdp" plan with the carry-over dynamic model.
	Dynamic bool `json:"dynamic,omitempty"`
}

// Parse decodes and validates a config. Decoding is strict: unknown
// keys anywhere in the document and trailing garbage after it are
// errors wrapping ErrBadConfig.
func Parse(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("decode: %v: %w", err, ErrBadConfig)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after the config document: %w", ErrBadConfig)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ParseFile is Parse over a file.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %v: %w", err, ErrBadConfig)
	}
	defer f.Close()
	c, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Validate checks the whole document: structural consistency, value
// domains, window sanity, and that the selected mechanism exists and
// constructs. Every failure wraps ErrBadConfig.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("missing name: %w", ErrBadConfig)
	}
	if err := c.Scenario.validate(); err != nil {
		return err
	}
	if c.Sim != nil {
		if err := c.Sim.validate(); err != nil {
			return err
		}
	}
	if c.Mechanism != nil {
		if _, err := c.Pricer(); err != nil {
			return err
		}
	}
	return nil
}

func (s *ScenarioConfig) validate() error {
	if s.Periods < 2 {
		return fmt.Errorf("scenario: %d periods (need ≥ 2): %w", s.Periods, ErrBadConfig)
	}
	if len(s.Betas) == 0 {
		return fmt.Errorf("scenario: no betas: %w", ErrBadConfig)
	}
	for j, b := range s.Betas {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("scenario: beta[%d] = %v: %w", j, b, ErrBadConfig)
		}
	}
	if s.Classes != nil && len(s.Classes) != len(s.Betas) {
		return fmt.Errorf("scenario: %d classes for %d betas: %w", len(s.Classes), len(s.Betas), ErrBadConfig)
	}
	seen := map[string]bool{}
	for i, name := range s.Classes {
		if name == "" || seen[name] {
			return fmt.Errorf("scenario: class %d empty or duplicate: %w", i, ErrBadConfig)
		}
		seen[name] = true
	}
	if err := s.Demand.validate(s.Periods, len(s.Betas)); err != nil {
		return err
	}
	if err := s.Capacity.validate(s.Periods); err != nil {
		return err
	}
	if err := s.Cost.validate(); err != nil {
		return err
	}
	if s.PeriodSeconds < 0 || math.IsNaN(s.PeriodSeconds) {
		return fmt.Errorf("scenario: periodSeconds %v: %w", s.PeriodSeconds, ErrBadConfig)
	}
	if s.MaxRewardNorm < 0 || math.IsNaN(s.MaxRewardNorm) {
		return fmt.Errorf("scenario: maxRewardNorm %v: %w", s.MaxRewardNorm, ErrBadConfig)
	}
	return nil
}

func (d *DemandConfig) validate(periods, classes int) error {
	switch {
	case d.Rows != nil && d.Generator != nil:
		return fmt.Errorf("demand: both rows and generator set (want exactly one): %w", ErrBadConfig)
	case d.Rows == nil && d.Generator == nil:
		return fmt.Errorf("demand: neither rows nor generator set: %w", ErrBadConfig)
	case d.Rows != nil:
		if len(d.Rows) != periods {
			return fmt.Errorf("demand: %d rows for %d periods: %w", len(d.Rows), periods, ErrBadConfig)
		}
		for i, row := range d.Rows {
			if len(row) != classes {
				return fmt.Errorf("demand: row %d has %d types, want %d (ragged matrix): %w",
					i+1, len(row), classes, ErrBadConfig)
			}
			for j, v := range row {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("demand: rows[%d][%d] = %v: %w", i, j, v, ErrBadConfig)
				}
			}
		}
	default:
		g := d.Generator
		if len(g.Base) != classes {
			return fmt.Errorf("demand generator: base has %d types, want %d: %w", len(g.Base), classes, ErrBadConfig)
		}
		for j, v := range g.Base {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("demand generator: base[%d] = %v: %w", j, v, ErrBadConfig)
			}
		}
		if g.DefaultMultiplier != nil && (*g.DefaultMultiplier < 0 || math.IsNaN(*g.DefaultMultiplier)) {
			return fmt.Errorf("demand generator: defaultMultiplier %v: %w", *g.DefaultMultiplier, ErrBadConfig)
		}
		if err := validateWindows("demand generator", g.Windows, periods); err != nil {
			return err
		}
	}
	return nil
}

func (cc *CapacityConfig) validate(periods int) error {
	switch {
	case cc.Constant != nil && cc.Profile != nil:
		return fmt.Errorf("capacity: both constant and profile set (want exactly one): %w", ErrBadConfig)
	case cc.Constant == nil && cc.Profile == nil:
		return fmt.Errorf("capacity: neither constant nor profile set: %w", ErrBadConfig)
	case cc.Constant != nil:
		if *cc.Constant < 0 || math.IsNaN(*cc.Constant) || math.IsInf(*cc.Constant, 0) {
			return fmt.Errorf("capacity: negative or non-finite constant %v: %w", *cc.Constant, ErrBadConfig)
		}
	default:
		if len(cc.Profile) != periods {
			return fmt.Errorf("capacity: profile has %d periods, want %d: %w", len(cc.Profile), periods, ErrBadConfig)
		}
		for i, v := range cc.Profile {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("capacity: negative or non-finite profile[%d] = %v: %w", i, v, ErrBadConfig)
			}
		}
	}
	return validateWindows("capacity", cc.Windows, periods)
}

func (cf *CostConfig) validate() error {
	pw := cf.Breaks != nil || cf.Slopes != nil
	switch {
	case cf.Slope != 0 && pw:
		return fmt.Errorf("cost: both slope and breaks/slopes set (want exactly one form): %w", ErrBadConfig)
	case cf.Slope == 0 && !pw:
		return fmt.Errorf("cost: neither slope nor breaks/slopes set: %w", ErrBadConfig)
	case cf.Slope != 0:
		if cf.Slope < 0 || math.IsNaN(cf.Slope) || math.IsInf(cf.Slope, 0) {
			return fmt.Errorf("cost: slope %v: %w", cf.Slope, ErrBadConfig)
		}
	default:
		if len(cf.Breaks) == 0 || len(cf.Breaks) != len(cf.Slopes) {
			return fmt.Errorf("cost: %d breaks for %d slopes: %w", len(cf.Breaks), len(cf.Slopes), ErrBadConfig)
		}
		for i := range cf.Breaks {
			if math.IsNaN(cf.Breaks[i]) || math.IsInf(cf.Breaks[i], 0) {
				return fmt.Errorf("cost: break[%d] = %v: %w", i, cf.Breaks[i], ErrBadConfig)
			}
			if cf.Slopes[i] < 0 || math.IsNaN(cf.Slopes[i]) || math.IsInf(cf.Slopes[i], 0) {
				return fmt.Errorf("cost: slope[%d] = %v (convexity needs ≥ 0): %w", i, cf.Slopes[i], ErrBadConfig)
			}
			if i > 0 && cf.Breaks[i] < cf.Breaks[i-1] {
				return fmt.Errorf("cost: breaks not ascending at %d: %w", i, ErrBadConfig)
			}
		}
	}
	return nil
}

func (s *SimConfig) validate() error {
	if s.Days < 0 || s.Users < 0 {
		return fmt.Errorf("sim: days %d, users %d (need ≥ 0): %w", s.Days, s.Users, ErrBadConfig)
	}
	switch s.Model {
	case "", "static", "dynamic":
	default:
		return fmt.Errorf("sim: unknown model %q (want static or dynamic): %w", s.Model, ErrBadConfig)
	}
	return nil
}

// validateWindows checks a window list: 1-based periods within the day,
// finite non-negative multipliers, and no period claimed twice.
func validateWindows(where string, ws []Window, periods int) error {
	claimed := make(map[int]string)
	for wi, w := range ws {
		if len(w.Periods) == 0 {
			return fmt.Errorf("%s: window %d (%q) has no periods: %w", where, wi, w.Name, ErrBadConfig)
		}
		if w.Multiplier < 0 || math.IsNaN(w.Multiplier) || math.IsInf(w.Multiplier, 0) {
			return fmt.Errorf("%s: window %d (%q) multiplier %v: %w", where, wi, w.Name, w.Multiplier, ErrBadConfig)
		}
		for _, q := range w.Periods {
			if q < 1 || q > periods {
				return fmt.Errorf("%s: window %d (%q) period %d outside 1..%d: %w",
					where, wi, w.Name, q, periods, ErrBadConfig)
			}
			if prev, ok := claimed[q]; ok {
				return fmt.Errorf("%s: period %d claimed by windows %q and %q: %w",
					where, q, prev, w.Name, ErrBadConfig)
			}
			claimed[q] = w.Name
		}
	}
	return nil
}

// ClassNames returns the declared class names, or synthesized
// "class1…classM" when the config names none.
func (c *Config) ClassNames() []string {
	if c.Scenario.Classes != nil {
		return append([]string(nil), c.Scenario.Classes...)
	}
	out := make([]string, len(c.Scenario.Betas))
	for j := range out {
		out[j] = fmt.Sprintf("class%d", j+1)
	}
	return out
}

// MechanismName returns the selected mechanism's registry name
// ("tdp" when the config declares none).
func (c *Config) MechanismName() string {
	if c.Mechanism == nil || c.Mechanism.Name == "" {
		return "tdp"
	}
	return c.Mechanism.Name
}

// Pricer constructs the config's mechanism (the paper's "tdp" when the
// config declares none).
func (c *Config) Pricer() (mechanism.Pricer, error) {
	return c.PricerNamed(c.MechanismName())
}

// PricerNamed constructs the named mechanism with the config's
// parameters — the `-mechanism` command-line override: same workload,
// different pricing.
func (c *Config) PricerNamed(name string) (mechanism.Pricer, error) {
	params := mechanism.Params{}
	if m := c.Mechanism; m != nil {
		params = mechanism.Params{
			Dynamic:           m.Dynamic,
			Budget:            m.Budget,
			BudgetFraction:    m.BudgetFraction,
			Gamma:             m.Gamma,
			Rounds:            m.Rounds,
			DefaultMultiplier: m.DefaultMultiplier,
		}
		for _, w := range m.Windows {
			params.Windows = append(params.Windows, mechanism.Window{
				Name:       w.Name,
				Periods:    append([]int(nil), w.Periods...),
				Multiplier: w.Multiplier,
			})
		}
	}
	if c.Sim != nil && c.Sim.Model == "dynamic" {
		params.Dynamic = true
	}
	p, err := mechanism.New(name, params)
	if err != nil {
		return nil, fmt.Errorf("mechanism %q: %w: %w", name, err, ErrBadConfig)
	}
	return p, nil
}
