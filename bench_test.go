// Package tdp's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (DESIGN.md §4) plus the solver/scaling
// ablations of DESIGN.md §5. Run with
//
//	go test -bench=. -benchmem .
package tdp

import (
	"fmt"
	"testing"

	"tdp/internal/core"
	"tdp/internal/emul"
	"tdp/internal/experiments"
	"tdp/internal/optimize"
	"tdp/internal/waiting"
)

// BenchmarkFig3WaitingFunctions regenerates Fig. 3's patient-vs-impatient
// waiting-function curves.
func BenchmarkFig3WaitingFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Estimation regenerates Table III / Fig. 2: the §IV
// waiting-function estimation control experiment.
func BenchmarkTable3Estimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4StaticRewards regenerates Fig. 4 (and the §V-A cost
// figures): the full 48-period static optimization.
func BenchmarkFig4StaticRewards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TrafficProfile isolates the profile metrics of Fig. 5 on a
// pre-solved schedule (the solve itself is Fig. 4's benchmark).
func BenchmarkFig5TrafficProfile(b *testing.B) {
	m, err := core.NewStaticModel(experiments.Static48())
	if err != nil {
		b.Fatal(err)
	}
	pr, err := m.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.UsageAt(pr.Rewards)
	}
}

// BenchmarkTable6DemandPerturbation regenerates Table VI: nine 12-period
// solves plus price/cost deltas.
func BenchmarkTable6DemandPerturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CostSweep regenerates Fig. 6: the capacity-exceedance cost
// sweep (seven 48-period solves).
func BenchmarkFig6CostSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7DynamicRewards regenerates Fig. 7: the offline dynamic
// 48-period optimization (includes the static comparison solve).
func BenchmarkFig7DynamicRewards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8DynamicProfile isolates the Fig. 8 offered-load recursion.
func BenchmarkFig8DynamicProfile(b *testing.B) {
	dm, err := core.NewDynamicModel(experiments.Dynamic48())
	if err != nil {
		b.Fatal(err)
	}
	pr, err := dm.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dm.Load(pr.Rewards)
	}
}

// BenchmarkTableXOnlineAdjustment regenerates Table X: a full online day
// with a period-1 arrival drop (48 single-period re-optimizations).
func BenchmarkTableXOnlineAdjustment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableX(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable12PerturbedRewards regenerates Table XII.
func BenchmarkTable12PerturbedRewards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table12(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable14WaitingPerturbation regenerates Tables XIII–XVI (the
// same run covers Table XVI's all-period case).
func BenchmarkTable14WaitingPerturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WaitPerturb(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable16AllPeriodPerturbation isolates the all-period
// mis-estimation solve of Table XVI.
func BenchmarkTable16AllPeriodPerturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := core.NewStaticModel(experiments.Static12WaitPerturbAll())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTubeOptimizerTiming is §VI-B's price-determination measurement:
// one online step on the 12-period, 10-type scenario (paper budget: 5 s).
func BenchmarkTubeOptimizerTiming(b *testing.B) {
	online, err := core.NewOnlineOptimizer(experiments.Static12(), core.OnlineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Advance(waiting.Dist12[i%12][:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTubeEstimationTiming is §VI-B's waiting-function estimation
// measurement: 3 periods, 2 types (paper budget: 25 s).
func BenchmarkTubeEstimationTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12TubeTestbed regenerates the §VI-C testbed emulation
// (Figs. 11/12): TIP and TDP runs on the 10 MBps bottleneck.
func BenchmarkFig12TubeTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := emul.DefaultConfig()
		cfg.Seed = int64(i + 1)
		if _, _, err := emul.RunComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProp5MonteCarlo runs the session-level validation of the fluid
// dynamic model (Prop. 5).
func BenchmarkProp5MonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Prop5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDropTailSweep runs the packet-level bottleneck load sweep.
func BenchmarkDropTailSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DropTail(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFiveDollarPlan runs the §VII congestion-dependent autopilot day.
func BenchmarkFiveDollarPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FiveDollarPlan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControlLoop runs the four-day Fig. 1 loop with fluid users.
func BenchmarkControlLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Loop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeekLongTrial runs the multi-day loop over the emulated testbed.
func BenchmarkWeekLongTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WeekLong(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPeriodAblation runs the §I day/night-vs-n-period comparison.
func BenchmarkTwoPeriodAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TwoPeriod(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel execution layer ---

// BenchmarkMultistartJobs measures the parallel multistart driver on the
// Appendix D definite-choice solve (8 restarts of coordinate descent) at
// several worker counts. Results are bit-identical across sub-benchmarks
// (per-start seeds; see optimize.MultistartJobs) — only wall-clock
// should change, scaling with worker count up to the restart count and
// the machine's cores.
func BenchmarkMultistartJobs(b *testing.B) {
	var serialCost float64
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				m, err := core.NewDefiniteChoiceModel(experiments.Static12())
				if err != nil {
					b.Fatal(err)
				}
				m.Jobs = jobs
				pr, err := m.Solve()
				if err != nil {
					b.Fatal(err)
				}
				cost = pr.Cost
			}
			if jobs == 1 {
				serialCost = cost
			} else if cost != serialCost {
				b.Fatalf("jobs=%d cost %v differs from serial %v", jobs, cost, serialCost)
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSolvers compares the three solvers on the 12-period
// static model.
func BenchmarkAblationSolvers(b *testing.B) {
	for _, tc := range []struct {
		name   string
		solver core.Solver
	}{
		{"homotopy", core.SolverHomotopy},
		{"coordinate", core.SolverCoordinate},
		{"subgradient", core.SolverSubgradient},
		{"lbfgs", core.SolverLBFGS},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, err := core.NewStaticModel(experiments.Static12())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.SolveWith(tc.solver); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSmoothing compares homotopy schedules of different
// lengths on the 48-period static model.
func BenchmarkAblationSmoothing(b *testing.B) {
	schedules := map[string][]float64{
		"full7":    optimize.DefaultSchedule(),
		"short3":   {1, 0.1, 0.01},
		"single":   {0.01},
		"coarse":   {1},
		"veryfine": {1, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001, 0.0003, 0.0001},
	}
	for name, schedule := range schedules {
		b.Run(name, func(b *testing.B) {
			scn := experiments.Static48()
			m, err := core.NewStaticModel(scn)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := optimize.Homotopy(
					m.SmoothedObjective,
					m.CostAt, make([]float64, scn.Periods),
					optimize.UniformBounds(scn.Periods, 0, m.MaxReward()),
					schedule, true,
					optimize.WithMaxIterations(3000), optimize.WithTolerance(1e-8))
				if err != nil {
					b.Fatal(err)
				}
				cost = res.F
			}
			b.ReportMetric(cost, "cost")
		})
	}
}

// BenchmarkAblationPeriods scales the static solve over the number of
// periods n ∈ {12, 24, 48, 96}.
func BenchmarkAblationPeriods(b *testing.B) {
	for _, n := range []int{12, 24, 48, 96} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			scn := scaledScenario(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.NewStaticModel(scn)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scaledScenario resamples the 48-period day to n periods.
func scaledScenario(n int) *core.Scenario {
	base := experiments.Static48()
	demand := make([][]float64, n)
	for i := 0; i < n; i++ {
		src := i * 48 / n
		demand[i] = append([]float64(nil), base.Demand[src]...)
	}
	capacity := make([]float64, n)
	for i := range capacity {
		capacity[i] = 18
	}
	// Clone-then-override instead of a field-list copy, so scalar options
	// added to Scenario later (the NoWrap/MaxRewardNorm bug class) carry
	// over to the resampled day automatically.
	scn := base.Clone()
	scn.Periods = n
	scn.Demand = demand
	scn.Capacity = capacity
	return scn
}
