// Command genscenarios regenerates the checked-in scenario configs
// under examples/scenarios/ from the Go constructors in
// internal/experiments, so the JSON seeds can never drift from the
// code: scfg_parity_test.go pins scfg.Compile() of each file against
// its constructor field-for-field, and this tool is how the files are
// (re)produced when a constructor changes.
//
// Usage: go run ./tools/genscenarios [-dir examples/scenarios]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"tdp/internal/core"
	"tdp/internal/experiments"
	"tdp/internal/scfg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genscenarios: ")
	dir := flag.String("dir", "examples/scenarios", "output directory")
	flag.Parse()

	seeds := []struct {
		file, name, desc, model string
		scn                     *core.Scenario
	}{
		{"static12.json", "static12",
			"Appendix I 12-period scenario: Table VIII demand, A = 180 MBps, cost slope 3.",
			"static", experiments.Static12()},
		{"static48.json", "static48",
			"§V-A scenario: Table VII demand, 48 half-hour periods, A = 180 MBps, cost slope 3.",
			"static", experiments.Static48()},
		{"dynamic48.json", "dynamic48",
			"§V-B offline dynamic scenario: Table VII arrivals, A = 210 MBps, cost slope 1.",
			"dynamic", experiments.Dynamic48()},
		{"static12-waitperturb-p1.json", "static12-waitperturb-p1",
			"Appendix I robustness: Static12 with period 1's distribution mis-estimated (Table XIII).",
			"static", experiments.Static12WaitPerturbPeriod1()},
		{"static12-waitperturb-all.json", "static12-waitperturb-all",
			"Appendix I robustness: Static12 with every period's distribution mis-estimated (Table XV).",
			"static", experiments.Static12WaitPerturbAll()},
	}
	for _, s := range seeds {
		cfg := fromScenario(s.name, s.desc, s.model, s.scn)
		if err := write(filepath.Join(*dir, s.file), cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", filepath.Join(*dir, s.file))
	}
}

// fromScenario ports a constructor-built scenario to config form,
// preferring the compact declarations (constant capacity, slope-form
// cost) whenever they reproduce the scenario exactly.
func fromScenario(name, desc, model string, scn *core.Scenario) *scfg.Config {
	cfg := &scfg.Config{
		Name:        name,
		Description: desc,
		Scenario: scfg.ScenarioConfig{
			Periods:       scn.Periods,
			Betas:         scn.Betas,
			Demand:        scfg.DemandConfig{Rows: scn.Demand},
			PeriodSeconds: scn.PeriodSeconds,
			MaxRewardNorm: scn.MaxRewardNorm,
			NoWrap:        scn.NoWrap,
		},
		Sim:       &scfg.SimConfig{Model: model},
		Mechanism: &scfg.MechanismConfig{Name: "tdp", Dynamic: model == "dynamic"},
	}
	// Bit-exact equality on purpose: the compact constant form must
	// round-trip to the identical profile, so any difference — even one
	// ULP — forces the explicit per-period form.
	constant := true
	for _, a := range scn.Capacity[1:] {
		if math.Float64bits(a) != math.Float64bits(scn.Capacity[0]) {
			constant = false
			break
		}
	}
	if constant {
		a := scn.Capacity[0]
		cfg.Scenario.Capacity.Constant = &a
	} else {
		cfg.Scenario.Capacity.Profile = scn.Capacity
	}
	if len(scn.Cost.Breaks) == 1 && scn.Cost.Breaks[0] == 0 {
		cfg.Scenario.Cost.Slope = scn.Cost.Slopes[0]
	} else {
		cfg.Scenario.Cost.Breaks = scn.Cost.Breaks
		cfg.Scenario.Cost.Slopes = scn.Cost.Slopes
	}
	return cfg
}

func write(path string, cfg *scfg.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	buf, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
